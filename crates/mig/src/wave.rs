//! Concurrent wave application: the write-isolated overlay simulator and
//! the serial reconciliation that turns its patches into real graph
//! mutations.
//!
//! A commit wave is a set of proposals whose TFO-extended footprints are
//! pairwise disjoint (planned by `shard::plan_waves`). Historically the
//! wave was still *applied* from one thread because every substitution
//! needed `&mut Mig`. This module removes that serial tail:
//!
//! 1. **Reserve.** The driver reserves per-proposal slot *arenas* from
//!    the free list (growing the slot arrays with dead placeholders when
//!    the list runs dry), so concurrent commits never race on slot
//!    allocation.
//! 2. **Simulate.** Each wave worker runs its engine's commit against a
//!    [`WaveSim`]: a [`crate::NetworkOps`] implementation over the
//!    *frozen* wave-start graph plus a private overlay. The simulator
//!    mirrors [`Mig::replace_node`] exactly — structural hashing against
//!    a strash view, cascade re-normalization, guard-protected pending
//!    substitutions, recursive cone freeing, eager level maintenance —
//!    but owns only the proposal's extended footprint and its arena.
//!    Reference edits on *foreign* (unowned, unstamped) nodes become
//!    boundary log entries; any mutation that would touch another
//!    proposal's stamped region, rewire an unowned parent, or overflow
//!    the arena **escapes**: the sim poisons itself and the driver
//!    re-runs that proposal serially on the real graph after the wave.
//! 3. **Apply.** Surviving patches write their final node states
//!    (fanins, fanout list, dead flag, level) back concurrently —
//!    per-patch node sets are disjoint by construction, so the writes
//!    are data-race free by ownership, not by locking.
//! 4. **Reconcile.** A serial pass per patch (proposal order) replays
//!    the strash edits, the cross-region boundary reference log and the
//!    output edits, repairs fanout back-pointers, feeds the dirty log,
//!    then recycles freed slots and resolves deferred foreign kills
//!    against real reference counts.
//!
//! Every stage is a pure function of (wave-start graph, proposal order),
//! so the resulting netlist is bit-identical for every worker count.

use crate::fanout::FanoutList;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::graph::OUT_FLAG;
use crate::{normalize_maj, Mig, NodeId, Normalized, Signal};

/// One node's final overlay state, written back verbatim by
/// [`apply_patches`].
#[derive(Clone)]
pub(crate) struct NodeState {
    fanins: [Signal; 3],
    /// Fanout entries by *value* (parent gate ids, `OUT_FLAG | i`
    /// outputs). Positions are reassigned during reconciliation; a
    /// normalized gate references a child in exactly one slot, so values
    /// are unique per list and value-level edits are well defined.
    fanouts: Vec<u32>,
    dead: bool,
    level: u32,
}

/// A reference edit on a node outside every proposal of the wave,
/// replayed serially during reconciliation.
#[derive(Clone, Copy)]
pub(crate) enum BoundaryOp {
    /// `entry` was appended to `child`'s fanout list.
    Add { child: NodeId, entry: u32 },
    /// `entry` was removed from `child`'s fanout list.
    Del { child: NodeId, entry: u32 },
}

/// Everything one simulated commit wants to do to the real graph.
#[derive(Default)]
pub(crate) struct WavePatch {
    /// Final overlay states in first-touch order (disjoint across the
    /// wave's patches).
    touched: Vec<(NodeId, NodeState)>,
    /// Net strash edits (transients compressed out): deletions of
    /// base-table keys, then insertions of new keys. The insertions are
    /// read by the driver's acceptance scan — two proposals building the
    /// same fresh gate collide here and the later one falls back.
    strash_del: Vec<[Signal; 3]>,
    pub(crate) strash_add: Vec<([Signal; 3], NodeId)>,
    /// Reference edits on foreign nodes, in simulation order.
    boundary: Vec<BoundaryOp>,
    /// Primary-output rewrites, in simulation order.
    outs: Vec<(u32, Signal)>,
    /// The dirty-log feed, in the exact order the serial engine would
    /// have produced.
    dirty: Vec<NodeId>,
    /// Owned nodes freed by the commit (slot generation bump + free-list
    /// recycling during finalization).
    freed: Vec<NodeId>,
    /// Foreign nodes that lost references and may now be dangling; their
    /// kill is deferred to finalization, where real reference counts are
    /// available.
    kill_candidates: Vec<NodeId>,
    /// Owned nodes whose level changed: level ripples into unowned
    /// parents are replayed from these seeds during finalization.
    level_roots: Vec<NodeId>,
    /// Net live-gate delta.
    live_delta: i64,
    /// Arena slots consumed (prefix of the reserved arena).
    pub(crate) arena_used: usize,
    /// The commit left its owned region; the driver discards the patch
    /// and re-runs the proposal serially after the wave.
    pub(crate) escaped: bool,
}

/// A write-isolated overlay over a frozen [`Mig`]: the `&mut dyn
/// NetworkOps` handed to a wave worker's engine commit.
pub(crate) struct WaveSim<'a> {
    base: &'a Mig,
    /// Wave-epoch stamps: `stamps[n] == epoch` means node `n` belongs to
    /// *some* proposal of this wave (an extended footprint or a reserved
    /// arena slot).
    stamps: &'a [u32],
    epoch: u32,
    /// This proposal's own region: its extended footprint plus its
    /// arena.
    owned: &'a FxHashSet<NodeId>,
    /// Pre-reserved slots for nodes this commit materializes.
    arena: &'a [NodeId],
    arena_next: usize,
    /// Overlay node states, materialized on first touch.
    st: FxHashMap<NodeId, NodeState>,
    /// First-touch order of `st` keys.
    touched: Vec<NodeId>,
    /// Transient guard counts (the sim analogue of the `GUARD` fanout
    /// entries protecting pending substitution signals); never stored in
    /// overlay lists.
    guards: FxHashMap<NodeId, u32>,
    /// Strash overlay: `Some(n)` maps the key in this view, `None`
    /// deletes a base mapping.
    strash_view: FxHashMap<[Signal; 3], Option<NodeId>>,
    /// Raw strash edit log (first-occurrence order recovers determinism
    /// from the hash-map view).
    strash_log: Vec<([Signal; 3], Option<NodeId>)>,
    /// Net fanout-count drift of foreign nodes (for `fanout_count`
    /// fidelity while boundary edits are pending).
    foreign_refs: FxHashMap<NodeId, i32>,
    /// Primary-output overlay plus its edit log.
    out_view: FxHashMap<u32, Signal>,
    boundary: Vec<BoundaryOp>,
    outs: Vec<(u32, Signal)>,
    dirty: Vec<NodeId>,
    freed: Vec<NodeId>,
    kill_candidates: Vec<NodeId>,
    live_delta: i64,
    escaped: bool,
}

impl<'a> WaveSim<'a> {
    /// Builds the simulator for one proposal. `owned` must contain the
    /// proposal's extended footprint and every `arena` slot; `stamps`
    /// must mark the union of all same-wave regions with `epoch`.
    pub(crate) fn new(
        base: &'a Mig,
        stamps: &'a [u32],
        epoch: u32,
        owned: &'a FxHashSet<NodeId>,
        arena: &'a [NodeId],
    ) -> Self {
        WaveSim {
            base,
            stamps,
            epoch,
            owned,
            arena,
            arena_next: 0,
            st: FxHashMap::default(),
            touched: Vec::new(),
            guards: FxHashMap::default(),
            strash_view: FxHashMap::default(),
            strash_log: Vec::new(),
            foreign_refs: FxHashMap::default(),
            out_view: FxHashMap::default(),
            boundary: Vec::new(),
            outs: Vec::new(),
            dirty: Vec::new(),
            freed: Vec::new(),
            kill_candidates: Vec::new(),
            live_delta: 0,
            escaped: false,
        }
    }

    /// Poisons the simulator: the commit needs a mutation outside its
    /// owned region, so the proposal must re-run serially.
    fn escape(&mut self) {
        self.escaped = true;
    }

    fn owns(&self, n: NodeId) -> bool {
        self.owned.contains(&n)
    }

    /// Stamped by this wave but owned by *another* proposal: touching it
    /// concurrently is never safe.
    fn foreign_stamped(&self, n: NodeId) -> bool {
        self.stamps.get(n as usize).copied() == Some(self.epoch) && !self.owns(n)
    }

    fn dead_view(&self, n: NodeId) -> bool {
        match self.st.get(&n) {
            Some(s) => s.dead,
            None => self.base.dead[n as usize],
        }
    }

    fn fanins_raw(&self, n: NodeId) -> [Signal; 3] {
        match self.st.get(&n) {
            Some(s) => s.fanins,
            None => self.base.fanins[n as usize],
        }
    }

    fn level_view(&self, n: NodeId) -> u32 {
        match self.st.get(&n) {
            Some(s) => s.level,
            None => self.base.level[n as usize],
        }
    }

    fn is_gate_view(&self, n: NodeId) -> bool {
        !self.base.is_terminal(n) && (n as usize) < self.base.fanins.len() && !self.dead_view(n)
    }

    /// Materializes (or returns) the overlay state of an owned node.
    fn state_mut(&mut self, n: NodeId) -> &mut NodeState {
        debug_assert!(self.owns(n), "overlay write to unowned node {n}");
        if !self.st.contains_key(&n) {
            self.touched.push(n);
            self.st.insert(
                n,
                NodeState {
                    fanins: self.base.fanins[n as usize],
                    fanouts: self.base.fanouts[n as usize].to_vec(),
                    dead: self.base.dead[n as usize],
                    level: self.base.level[n as usize],
                },
            );
        }
        self.st.get_mut(&n).expect("just inserted")
    }

    /// A snapshot of `n`'s fanout entries in this view.
    fn fanout_view(&self, n: NodeId) -> Vec<u32> {
        match self.st.get(&n) {
            Some(s) => s.fanouts.clone(),
            None => self.base.fanouts[n as usize].to_vec(),
        }
    }

    /// The view reference count of an *owned* node: overlay list length
    /// plus transient guards.
    fn refcount_view(&self, n: NodeId) -> usize {
        let list = match self.st.get(&n) {
            Some(s) => s.fanouts.len(),
            None => self.base.fanouts[n as usize].len(),
        };
        list + self.guards.get(&n).copied().unwrap_or(0) as usize
    }

    fn guard(&mut self, n: NodeId) {
        *self.guards.entry(n).or_insert(0) += 1;
    }

    fn unguard(&mut self, n: NodeId) {
        let c = self
            .guards
            .get_mut(&n)
            .expect("pending substitution guard present");
        *c -= 1;
        if *c == 0 {
            self.guards.remove(&n);
        }
    }

    /// Appends a reference `entry` to `child`'s list: overlay edit when
    /// owned, boundary log when foreign, escape when another proposal's.
    fn add_ref(&mut self, child: NodeId, entry: u32) {
        if self.owns(child) {
            self.state_mut(child).fanouts.push(entry);
        } else if self.foreign_stamped(child) {
            self.escape();
        } else {
            self.boundary.push(BoundaryOp::Add { child, entry });
            *self.foreign_refs.entry(child).or_insert(0) += 1;
        }
    }

    /// Removes the reference `entry` from `child`'s list (dual of
    /// [`WaveSim::add_ref`]).
    fn remove_ref(&mut self, child: NodeId, entry: u32) {
        if self.owns(child) {
            let list = &mut self.state_mut(child).fanouts;
            let pos = list
                .iter()
                .position(|&e| e == entry)
                .expect("removed reference present in view");
            list.swap_remove(pos);
        } else if self.foreign_stamped(child) {
            self.escape();
        } else {
            self.boundary.push(BoundaryOp::Del { child, entry });
            *self.foreign_refs.entry(child).or_insert(0) -= 1;
        }
    }

    fn strash_lookup(&self, key: &[Signal; 3]) -> Option<NodeId> {
        match self.strash_view.get(key) {
            Some(&slot) => slot,
            None => self.base.strash.get(key).copied(),
        }
    }

    fn strash_set(&mut self, key: [Signal; 3], val: Option<NodeId>) {
        self.strash_view.insert(key, val);
        self.strash_log.push((key, val));
    }

    /// Mirror of `Mig::node_for_key` allocating from the arena (the
    /// strash miss is the caller's responsibility).
    fn node_for_key(&mut self, key: [Signal; 3]) -> NodeId {
        debug_assert!(self.strash_lookup(&key).is_none());
        if self.arena_next >= self.arena.len() {
            self.escape();
            return 0;
        }
        let n = self.arena[self.arena_next];
        self.arena_next += 1;
        debug_assert!(self.owns(n) && self.base.dead[n as usize]);
        let level = 1 + key
            .iter()
            .map(|s| self.level_view(s.node()))
            .max()
            .unwrap_or(0);
        self.touched.push(n);
        self.st.insert(
            n,
            NodeState {
                fanins: key,
                fanouts: Vec::new(),
                dead: false,
                level,
            },
        );
        self.strash_set(key, Some(n));
        for s in key {
            self.add_ref(s.node(), n);
        }
        self.live_delta += 1;
        self.dirty.push(n);
        n
    }

    /// Mirror of `Mig::depends_on` over the view (level-pruned DFS).
    fn depends_on_view(&self, start: NodeId, target: NodeId) -> bool {
        if start == target {
            return true;
        }
        if self.level_view(start) <= self.level_view(target) {
            return false;
        }
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            if self.base.is_terminal(v) || !seen.insert(v) {
                continue;
            }
            for s in self.fanins_raw(v) {
                let m = s.node();
                if m == target {
                    return true;
                }
                if self.level_view(m) > self.level_view(target) {
                    stack.push(m);
                }
            }
        }
        false
    }

    /// Mirror of `Mig::kill_if_unreferenced`: recursively frees the
    /// unreferenced part of `n`'s cone in the overlay; unowned nodes are
    /// deferred to finalization (their real reference counts decide).
    fn sim_kill_if_unref(&mut self, n: NodeId) {
        let mut stack = vec![n];
        while let Some(v) = stack.pop() {
            if self.base.is_terminal(v) {
                continue;
            }
            if !self.owns(v) {
                self.kill_candidates.push(v);
                continue;
            }
            if self.dead_view(v) || self.refcount_view(v) > 0 {
                continue;
            }
            let key = self.fanins_raw(v);
            debug_assert_eq!(self.strash_lookup(&key), Some(v));
            self.strash_set(key, None);
            let state = self.state_mut(v);
            state.dead = true;
            state.fanins = [Signal::ZERO; 3];
            state.level = 0;
            self.live_delta -= 1;
            self.freed.push(v);
            self.dirty.push(v);
            for s in key {
                self.remove_ref(s.node(), v);
                stack.push(s.node());
            }
        }
    }

    /// Mirror of `Mig::update_levels_from` over the view: propagates
    /// level changes through owned parents; ripples into unowned parents
    /// are replayed during finalization from the recorded level roots.
    fn update_levels_view(&mut self, p: NodeId) {
        let mut work = vec![p];
        while let Some(v) = work.pop() {
            if self.base.is_terminal(v) || self.dead_view(v) || !self.owns(v) {
                continue;
            }
            let nl = 1 + self
                .fanins_raw(v)
                .iter()
                .map(|s| self.level_view(s.node()))
                .max()
                .unwrap_or(0);
            if nl != self.level_view(v) {
                self.state_mut(v).level = nl;
                for f in self.fanout_view(v) {
                    if f & OUT_FLAG == 0 {
                        work.push(f);
                    }
                }
            }
        }
    }

    fn out_signal(&self, i: u32) -> Signal {
        self.out_view
            .get(&i)
            .copied()
            .unwrap_or(self.base.outputs[i as usize])
    }

    /// Mirror of `Mig::set_output`.
    fn sim_set_output(&mut self, i: u32, s: Signal) {
        let old = self.out_signal(i);
        self.remove_ref(old.node(), OUT_FLAG | i);
        self.out_view.insert(i, s);
        self.outs.push((i, s));
        self.add_ref(s.node(), OUT_FLAG | i);
    }

    /// Mirror of `Mig::replace_in_gate`.
    fn sim_replace_in_gate(&mut self, p: NodeId, o: NodeId, n: Signal) -> Option<(NodeId, Signal)> {
        let old_key = self.fanins_raw(p);
        let mut ops = old_key;
        for s in ops.iter_mut() {
            if s.node() == o {
                *s = n.complement_if(s.is_complemented());
            }
        }
        match normalize_maj(ops) {
            Normalized::Copy(s) => Some((p, s)),
            Normalized::Node(key, compl) => {
                if let Some(q) = self.strash_lookup(&key) {
                    debug_assert_ne!(q, p, "substitution changed an operand");
                    if self.foreign_stamped(q) {
                        // Merging with a gate another proposal may be
                        // rewiring concurrently: not decidable here.
                        self.escape();
                        return None;
                    }
                    return Some((p, Signal::new(q, compl)));
                }
                if compl {
                    let r = self.node_for_key(key);
                    if self.escaped {
                        return None;
                    }
                    return Some((p, Signal::new(r, true)));
                }
                debug_assert_eq!(self.strash_lookup(&old_key), Some(p));
                self.strash_set(old_key, None);
                for s in old_key {
                    self.remove_ref(s.node(), p);
                }
                self.state_mut(p).fanins = key;
                self.strash_set(key, Some(p));
                for s in key {
                    self.add_ref(s.node(), p);
                }
                for s in old_key {
                    self.sim_kill_if_unref(s.node());
                }
                self.dirty.push(p);
                self.update_levels_view(p);
                None
            }
        }
    }

    /// Mirror of `Mig::replace_node`. Escapes (returning `false`)
    /// instead of mutating outside the owned region.
    fn sim_replace_node(&mut self, old: NodeId, new: Signal) -> bool {
        if self.escaped {
            return false;
        }
        if !self.owns(old) || !self.is_gate_view(old) || self.dead_view(new.node()) {
            self.escape();
            return false;
        }
        if new.node() == old || self.depends_on_view(new.node(), old) {
            return false;
        }
        let mut subst: Vec<(NodeId, Signal)> = vec![(old, new)];
        self.guard(new.node());
        while let Some((o, n)) = subst.pop() {
            self.unguard(n.node());
            if self.dead_view(o) {
                self.sim_kill_if_unref(n.node());
                if self.escaped {
                    return false;
                }
                continue;
            }
            debug_assert!(!self.dead_view(n.node()));
            let parents: Vec<u32> = self
                .fanout_view(o)
                .into_iter()
                .filter(|f| f & OUT_FLAG == 0)
                .collect();
            for p in parents {
                if self.dead_view(p) {
                    continue;
                }
                if !self.owns(p) {
                    // The cascade reached a parent outside the extended
                    // footprint: exactly the serial-fallback condition.
                    self.escape();
                    return false;
                }
                if let Some(pair) = self.sim_replace_in_gate(p, o, n) {
                    self.guard(pair.1.node());
                    subst.push(pair);
                }
                if self.escaped {
                    return false;
                }
            }
            let out_refs: Vec<u32> = self
                .fanout_view(o)
                .into_iter()
                .filter(|&f| f & OUT_FLAG != 0)
                .collect();
            for f in out_refs {
                let i = f & !OUT_FLAG;
                let cur = self.out_signal(i);
                debug_assert_eq!(cur.node(), o);
                self.sim_set_output(i, n.complement_if(cur.is_complemented()));
            }
            self.sim_kill_if_unref(o);
            if self.escaped {
                return false;
            }
        }
        true
    }

    /// Closes the simulation into a patch. Escaped sims return an empty
    /// patch flagged for the serial fallback.
    pub(crate) fn finish(mut self) -> WavePatch {
        if self.escaped {
            return WavePatch {
                escaped: true,
                ..WavePatch::default()
            };
        }
        debug_assert!(self.guards.is_empty(), "guards must not outlive a commit");
        // Compress the strash log: last op per key, first-occurrence
        // order, transients (adds later deleted, deletes of never-based
        // keys) dropped against the base table.
        let mut final_op: FxHashMap<[Signal; 3], Option<NodeId>> = FxHashMap::default();
        let mut key_order: Vec<[Signal; 3]> = Vec::new();
        for &(key, val) in &self.strash_log {
            if final_op.insert(key, val).is_none() {
                key_order.push(key);
            }
        }
        let mut strash_del = Vec::new();
        let mut strash_add = Vec::new();
        for key in key_order {
            let base_has = self.base.strash.get(&key).copied();
            match final_op[&key] {
                Some(n) if base_has != Some(n) => {
                    debug_assert!(base_has.is_none(), "cross-proposal strash overwrite");
                    strash_add.push((key, n));
                }
                None if base_has.is_some() => strash_del.push(key),
                _ => {}
            }
        }
        let mut touched = Vec::with_capacity(self.touched.len());
        let mut level_roots = Vec::new();
        for n in std::mem::take(&mut self.touched) {
            let state = self
                .st
                .remove(&n)
                .expect("touched nodes have overlay state");
            if !state.dead
                && !self.base.is_terminal(n)
                && state.level != self.base.level[n as usize]
            {
                level_roots.push(n);
            }
            touched.push((n, state));
        }
        WavePatch {
            touched,
            strash_del,
            strash_add,
            boundary: self.boundary,
            outs: self.outs,
            dirty: self.dirty,
            freed: self.freed,
            kill_candidates: self.kill_candidates,
            level_roots,
            live_delta: self.live_delta,
            arena_used: self.arena_next,
            escaped: false,
        }
    }
}

impl crate::NetworkOps for WaveSim<'_> {
    fn num_inputs(&self) -> usize {
        self.base.num_inputs
    }

    fn is_terminal(&self, n: NodeId) -> bool {
        self.base.is_terminal(n)
    }

    fn is_gate(&self, n: NodeId) -> bool {
        !self.escaped && self.is_gate_view(n)
    }

    fn is_dead(&self, n: NodeId) -> bool {
        self.escaped || self.dead_view(n)
    }

    fn fanins(&self, n: NodeId) -> [Signal; 3] {
        if self.escaped {
            return [Signal::ZERO; 3];
        }
        assert!(self.is_gate_view(n), "node {n} is not a gate");
        self.fanins_raw(n)
    }

    fn level(&self, n: NodeId) -> u32 {
        if self.escaped {
            return 0;
        }
        self.level_view(n)
    }

    fn fanout_count(&self, n: NodeId) -> u32 {
        if self.escaped {
            return 0;
        }
        match self.st.get(&n) {
            Some(s) => s.fanouts.len() as u32,
            None => {
                let base = self.base.fanouts[n as usize].len() as i32;
                let drift = self.foreign_refs.get(&n).copied().unwrap_or(0);
                (base + drift).max(0) as u32
            }
        }
    }

    fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        if self.escaped {
            return Signal::ZERO;
        }
        match normalize_maj([a, b, c]) {
            Normalized::Copy(s) => s,
            Normalized::Node(key, compl) => {
                if let Some(q) = self.strash_lookup(&key) {
                    if self.foreign_stamped(q) {
                        self.escape();
                        return Signal::ZERO;
                    }
                    return Signal::new(q, compl);
                }
                let n = self.node_for_key(key);
                if self.escaped {
                    return Signal::ZERO;
                }
                Signal::new(n, compl)
            }
        }
    }

    fn replace_node(&mut self, old: NodeId, new: Signal) -> bool {
        self.sim_replace_node(old, new)
    }

    fn reclaim(&mut self, n: NodeId) {
        if self.escaped {
            return;
        }
        self.sim_kill_if_unref(n);
    }
}

/// Reserves `count` gate slots: free-list pops first, then growth with
/// dead placeholder rows. Reservation order is the proposal order, so
/// slot assignment is deterministic.
pub(crate) fn reserve_slots(mig: &mut Mig, count: usize) -> Vec<NodeId> {
    let mut slots = Vec::with_capacity(count);
    for _ in 0..count {
        match mig.free.pop() {
            Some(s) => {
                debug_assert!(mig.dead[s as usize]);
                slots.push(s);
            }
            None => {
                let s = mig.fanins.len() as NodeId;
                mig.fanins.push([Signal::ZERO; 3]);
                mig.fanouts.push(FanoutList::new());
                mig.fanout_pos.push([0; 3]);
                mig.dead.push(true);
                mig.slot_gen.push(0);
                mig.level.push(0);
                slots.push(s);
            }
        }
    }
    slots
}

/// Returns unused reserved slots, newest first, so the free-list order
/// is restored for the slots that were never consumed. A leftover that
/// is a never-used placeholder at the very top of the slot arrays
/// (generation 0, so it has no recycling history a stale cursor could
/// alias) is popped off the arrays entirely instead — over-provisioned
/// arenas must not permanently grow the graph.
pub(crate) fn return_slots(mig: &mut Mig, leftovers: &[NodeId]) {
    for &s in leftovers.iter().rev() {
        debug_assert!(mig.dead[s as usize]);
        if s as usize + 1 == mig.fanins.len() && mig.slot_gen[s as usize] == 0 {
            mig.fanins.pop();
            mig.fanouts.pop();
            mig.fanout_pos.pop();
            mig.dead.pop();
            mig.slot_gen.pop();
            mig.level.pop();
        } else {
            mig.free.push(s);
        }
    }
}

/// A raw pointer wrapper asserting that concurrent writers touch
/// disjoint indices (guaranteed here by per-patch node ownership).
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
impl<T> Copy for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

/// Writes every patch's final node states into the graph, one worker
/// per patch batch. Patches own disjoint node sets (extended footprints
/// are pairwise disjoint and arenas are reserved per proposal), so the
/// element writes never alias.
pub(crate) fn apply_patches(mig: &mut Mig, patches: &[&WavePatch], threads: usize, wave: u32) {
    #[cfg(debug_assertions)]
    {
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        for p in patches {
            for &(n, _) in &p.touched {
                assert!(seen.insert(n), "wave patches overlap on node {n}");
            }
        }
    }
    let fanins = SendPtr(mig.fanins.as_mut_ptr());
    let fanouts = SendPtr(mig.fanouts.as_mut_ptr());
    let dead = SendPtr(mig.dead.as_mut_ptr());
    let level = SendPtr(mig.level.as_mut_ptr());
    let n_slots = mig.fanins.len();
    let workers = threads.max(1).min(patches.len().max(1));
    obs::metrics::add(obs::Metric::SchedWaveWorkers, workers as u64);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let barrier = std::sync::Barrier::new(workers);
    std::thread::scope(|scope| {
        for m in 0..workers {
            let next = &next;
            let barrier = &barrier;
            scope.spawn(move || {
                // Capture the `SendPtr` wrappers whole (edition-2021
                // disjoint capture would otherwise move the raw `.0`
                // pointers, which are not `Send`).
                let (fanins, fanouts, dead, level) = (fanins, fanouts, dead, level);
                let _span = obs::trace::span_dyn(|| format!("commit:wave{wave}:worker{m}"));
                barrier.wait();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= patches.len() {
                        break;
                    }
                    for (n, state) in &patches[i].touched {
                        let idx = *n as usize;
                        assert!(idx < n_slots);
                        // SAFETY: patches write pairwise-disjoint node
                        // sets (asserted above in debug builds and
                        // guaranteed by wave planning + arena
                        // reservation), and every index is in bounds.
                        unsafe {
                            *fanins.0.add(idx) = state.fanins;
                            *fanouts.0.add(idx) = FanoutList::from_slice(&state.fanouts);
                            *dead.0.add(idx) = state.dead;
                            *level.0.add(idx) = state.level;
                        }
                    }
                }
            });
        }
    });
}

/// Removes `entry` from `child`'s fanout list by value. The moved-entry
/// back-pointer repair is *lenient*: an entry whose gate no longer
/// references `child` belongs to a dead gate awaiting its own boundary
/// deletion, and is skipped (its back-pointers are garbage either way).
///
/// Position lookup goes through the entry's own back-pointers first
/// (`out_pos` / `fanout_pos`), verified against the list before use —
/// `child` is a cut leaf, and leaves are routinely high-fanout nodes
/// (a primary input can feed thousands of gates), so the by-value scan
/// this replaces dominated whole-wave reconciliation at production
/// scale. The scan remains as the fallback for stale pointers (arena
/// gates never had theirs installed; apply rewrote the gate's fanins).
fn boundary_remove(mig: &mut Mig, child: NodeId, entry: u32) {
    let list = &mig.fanouts[child as usize];
    let verified = |p: u32| {
        let p = p as usize;
        (p < list.len() && list.get(p) == entry).then_some(p)
    };
    let pos = if entry & OUT_FLAG != 0 {
        verified(mig.out_pos[(entry & !OUT_FLAG) as usize])
    } else {
        let back = &mig.fanout_pos[entry as usize];
        (0..3).find_map(|k| verified(back[k]))
    };
    let pos = pos.unwrap_or_else(|| {
        list.iter()
            .position(|e| e == entry)
            .expect("boundary-removed reference present")
    });
    let list = &mut mig.fanouts[child as usize];
    list.swap_remove(pos);
    if pos < list.len() {
        let moved = list.get(pos);
        if moved & OUT_FLAG != 0 {
            mig.out_pos[(moved & !OUT_FLAG) as usize] = pos as u32;
        } else if let Some(slot) = mig.fanins[moved as usize]
            .iter()
            .position(|s| s.node() == child)
        {
            mig.fanout_pos[moved as usize][slot] = pos as u32;
        }
    }
}

/// Serial reconciliation of one accepted patch (run per patch in
/// proposal order, after [`apply_patches`]): strash edits, boundary
/// reference edits, output rewrites, the dirty-log feed, the live-gate
/// counter, and a wholesale back-pointer repair over the patch's
/// surviving nodes.
pub(crate) fn reconcile_patch(mig: &mut Mig, patch: &WavePatch) {
    for key in &patch.strash_del {
        let removed = mig.strash.remove(key);
        debug_assert!(removed.is_some(), "strash deletion of unmapped key");
    }
    for &(key, n) in &patch.strash_add {
        let prev = mig.strash.insert(key, n);
        debug_assert!(prev.is_none(), "strash insertion collided");
    }
    for &op in &patch.boundary {
        match op {
            BoundaryOp::Del { child, entry } => boundary_remove(mig, child, entry),
            BoundaryOp::Add { child, entry } => {
                let pos = mig.push_fanout(child, entry);
                if entry & OUT_FLAG != 0 {
                    mig.out_pos[(entry & !OUT_FLAG) as usize] = pos;
                } else if let Some(slot) = mig.fanins[entry as usize]
                    .iter()
                    .position(|s| s.node() == child)
                {
                    // Lenient: a gate created then killed within the
                    // patch adds and later deletes this entry; its
                    // zeroed fanins no longer name `child`.
                    mig.fanout_pos[entry as usize][slot] = pos;
                }
            }
        }
    }
    for &(i, s) in &patch.outs {
        mig.outputs[i as usize] = s;
    }
    for &n in &patch.dirty {
        mig.note_structural_change(n);
    }
    mig.live_gates = (mig.live_gates as i64 + patch.live_delta) as usize;
    // Wholesale back-pointer repair: every entry position in a touched
    // node's (freshly overwritten) fanout list is re-derived. Entries
    // are live by construction — a same-wave proposal killing a gate
    // that references another patch's node would have escaped.
    for &(n, ref state) in &patch.touched {
        if state.dead {
            continue;
        }
        for pos in 0..mig.fanouts[n as usize].len() {
            let e = mig.fanouts[n as usize].get(pos);
            if e & OUT_FLAG != 0 {
                mig.out_pos[(e & !OUT_FLAG) as usize] = pos as u32;
            } else {
                let slot = mig.fanins[e as usize]
                    .iter()
                    .position(|s| s.node() == n)
                    .expect("fanout entry references its child");
                mig.fanout_pos[e as usize][slot] = pos as u32;
            }
        }
    }
}

/// Level recomputation seeded *above* `root`: `root`'s own level was
/// installed by the apply phase, so the standard worklist (which stops
/// on unchanged levels) must start from its fanout gates to push ripples
/// into nodes outside the patch.
fn update_levels_from_fanouts(mig: &mut Mig, root: NodeId) {
    let mut work: Vec<NodeId> = mig.fanout_gates(root).collect();
    while let Some(v) = work.pop() {
        if mig.dead[v as usize] || mig.is_terminal(v) {
            continue;
        }
        let nl = 1 + mig.fanins[v as usize]
            .iter()
            .map(|s| mig.level[s.node() as usize])
            .max()
            .unwrap_or(0);
        if nl != mig.level[v as usize] {
            mig.level[v as usize] = nl;
            for i in 0..mig.fanouts[v as usize].len() {
                let f = mig.fanouts[v as usize].get(i);
                if f & OUT_FLAG == 0 {
                    work.push(f);
                }
            }
        }
    }
}

/// Finalization of one patch (run per patch in proposal order, after
/// every patch's [`reconcile_patch`]): recycles freed slots, resolves
/// deferred foreign kills against real reference counts, and replays
/// level ripples into nodes outside the patch.
pub(crate) fn finalize_patch(mig: &mut Mig, patch: &WavePatch) {
    for &n in &patch.freed {
        debug_assert!(mig.dead[n as usize]);
        mig.slot_gen[n as usize] = mig.slot_gen[n as usize].wrapping_add(1);
        mig.free.push(n);
    }
    for &n in &patch.kill_candidates {
        if !mig.is_terminal(n) && !mig.dead[n as usize] {
            mig.kill_if_unreferenced(n);
        }
    }
    for &n in &patch.level_roots {
        if !mig.dead[n as usize] {
            update_levels_from_fanouts(mig, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkOps;

    /// Stamps + ownership for a single-proposal wave over `ext`.
    fn solo_wave(
        mig: &mut Mig,
        ext: &[NodeId],
        arena_size: usize,
    ) -> (Vec<u32>, Vec<NodeId>, FxHashSet<NodeId>) {
        let arena = reserve_slots(mig, arena_size);
        let mut stamps = vec![0u32; mig.num_nodes()];
        let mut owned: FxHashSet<NodeId> = ext.iter().copied().collect();
        for &n in ext {
            stamps[n as usize] = 1;
        }
        for &s in &arena {
            stamps[s as usize] = 1;
            owned.insert(s);
        }
        (stamps, arena, owned)
    }

    /// End-to-end: a simulated replace_node must reconcile into exactly
    /// the graph the real replace_node produces (same function, same
    /// structural invariants).
    #[test]
    fn simulated_replacement_reconciles_to_a_consistent_graph() {
        let build = || {
            let mut m = Mig::new(4);
            let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
            let inner = m.and(a, b);
            let root = m.and(inner, b); // redundant: equals inner
            let top = m.maj(root, c, d);
            m.add_output(top);
            (m, root.node(), inner.node(), top.node())
        };
        let (mut m, root, inner, top) = build();
        let want = m.output_truth_tables();

        // Extension: footprint {root, inner} plus fanout gates {top}.
        let (stamps, arena, owned) = solo_wave(&mut m, &[root, inner, top], 4);
        let frozen: &Mig = &m;
        let mut sim = WaveSim::new(frozen, &stamps, 1, &owned, &arena);
        assert!(sim.replace_node(root, Signal::new(inner, false)));
        let patch = sim.finish();
        assert!(!patch.escaped);

        let patches = [&patch];
        apply_patches(&mut m, &patches, 2, 0);
        reconcile_patch(&mut m, &patch);
        finalize_patch(&mut m, &patch);
        let leftover = &arena[patch.arena_used..];
        return_slots(&mut m, leftover);

        m.debug_check();
        assert!(m.is_dead(root));
        assert_eq!(m.output_truth_tables(), want);

        // The real serial engine reaches the same live netlist.
        let (mut serial, root_s, inner_s, _) = build();
        assert!(serial.replace_node(root_s, Signal::new(inner_s, false)));
        let fp_w: Vec<_> = m.gates().map(|g| (g, m.fanins(g))).collect();
        let fp_s: Vec<_> = serial.gates().map(|g| (g, serial.fanins(g))).collect();
        assert_eq!(fp_w, fp_s);
        assert_eq!(m.outputs(), serial.outputs());
    }

    /// A cascade that must rewire a parent outside the owned extension
    /// escapes instead of mutating it.
    #[test]
    fn cascade_outside_extension_escapes() {
        let mut m = Mig::new(4);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let inner = m.and(a, b);
        let root = m.and(inner, b);
        let mid = m.maj(root, a, !b); // in extension (fanout of root)
        let outer = m.maj(mid, c, a); // outside: cascade target
        m.add_output(outer);
        // Force a cascade: replacing root by `a` collapses `mid`
        // (<a a !b> = a), which substitutes into `outer` — outside the
        // owned region.
        let ext = [root.node(), inner.node(), mid.node()];
        let (stamps, arena, owned) = solo_wave(&mut m, &ext, 4);
        let frozen: &Mig = &m;
        let mut sim = WaveSim::new(frozen, &stamps, 1, &owned, &arena);
        let _ = sim.replace_node(root.node(), a);
        let patch = sim.finish();
        assert!(patch.escaped, "outside cascade must escape");
        return_slots(&mut m, &arena);
        m.debug_check();
    }

    /// Arena exhaustion escapes instead of allocating globally.
    #[test]
    fn arena_overflow_escapes() {
        let mut m = Mig::new(4);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let g = m.maj(a, b, c);
        m.add_output(g);
        let (stamps, arena, owned) = solo_wave(&mut m, &[g.node()], 0);
        let frozen: &Mig = &m;
        let mut sim = WaveSim::new(frozen, &stamps, 1, &owned, &arena);
        let s = sim.maj(a, !b, c); // needs a fresh node, arena empty
        assert_eq!(s, Signal::ZERO);
        assert!(sim.finish().escaped);
    }

    /// Touching another proposal's stamped node escapes.
    #[test]
    fn foreign_stamped_reference_escapes() {
        let mut m = Mig::new(4);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let mine = m.maj(a, b, c);
        let theirs = m.maj(a, !b, c);
        let top = m.maj(mine, theirs, a);
        m.add_output(top);
        let arena = reserve_slots(&mut m, 2);
        let mut stamps = vec![0u32; m.num_nodes()];
        // Both regions stamped with the wave epoch; only `mine`+`top`
        // (and the arena) owned by this sim.
        for n in [mine.node(), theirs.node(), top.node()] {
            stamps[n as usize] = 7;
        }
        let mut owned: FxHashSet<NodeId> = [mine.node(), top.node()].into_iter().collect();
        for &s in &arena {
            stamps[s as usize] = 7;
            owned.insert(s);
        }
        let frozen: &Mig = &m;
        let mut sim = WaveSim::new(frozen, &stamps, 7, &owned, &arena);
        // Rebuilding the exact foreign gate hits its strash entry.
        let hit = sim.maj(a, !b, c);
        assert_eq!(hit, Signal::ZERO);
        assert!(sim.finish().escaped);
        return_slots(&mut m, &arena);
        m.debug_check();
    }
}
