//! Region partitioning for sharded rewriting.
//!
//! The functional-hashing flow is embarrassingly local — a replacement
//! touches one cut's cone plus its fanout frontier — so independent
//! replacements can be *proposed* concurrently and *committed* serially.
//! A [`RegionPartition`] generalizes the fanout-free-region forest of
//! [`FfrPartition`](crate::FfrPartition) into a disjoint assignment of
//! every live gate to a numbered region, with two strategies:
//!
//! * [`PartitionStrategy::FfrForest`] groups whole fanout-free regions
//!   (in topological root order) into balanced shards — a replacement
//!   inside one FFR never strands sharing in another, so FFR-restricted
//!   variants shard along their natural seams;
//! * [`PartitionStrategy::LevelBands`] slices the graph into horizontal
//!   level bands — the whole-graph variants get shards without any
//!   fanout restriction, at the price of more boundary crossings.
//!
//! Regions are *read views* for proposal workers: [`RegionPartition::view`]
//! materializes a region's member gates (topological order), the external
//! nodes feeding it and its boundary (members referenced from outside).
//! [`RegionPartition::boundary_conflict`] is the check the shard driver
//! uses to classify a proposal footprint as region-local or crossing.

use crate::{CompactMap, FfrPartition, Mig, NodeId};

/// Snapshot of every slot's reuse generation at partition time.
fn capture_generations(mig: &Mig) -> Vec<u32> {
    (0..mig.num_nodes() as u32)
        .map(|n| mig.slot_generation(n))
        .collect()
}

/// Region id of terminals, dead slots and nodes created after the
/// partition was computed.
const NO_REGION: u32 = u32::MAX;

/// How [`RegionPartition::compute`] carves the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Group whole fanout-free regions, in topological order of their
    /// roots, into at most `max_regions` balanced shards.
    FfrForest {
        /// Upper bound on the number of regions produced.
        max_regions: usize,
    },
    /// Slice the graph into at most `max_regions` horizontal bands of
    /// consecutive levels.
    LevelBands {
        /// Upper bound on the number of regions produced.
        max_regions: usize,
    },
}

/// A read view of one region: everything a proposal worker needs without
/// touching the shared graph mutably.
#[derive(Debug, Clone)]
pub struct RegionView {
    /// The region id.
    pub region: u32,
    /// Member gates in topological order.
    pub members: Vec<NodeId>,
    /// Distinct non-member nodes (primary inputs or foreign gates, never
    /// the constant) feeding the members, in first-use order.
    pub inputs: Vec<NodeId>,
    /// Members holding at least one reference from outside the region (a
    /// foreign gate or a primary output), in topological order. These are
    /// the nodes a region-level rewrite must preserve (or substitute).
    pub boundary: Vec<NodeId>,
}

/// A disjoint assignment of every live gate to a region.
#[derive(Debug, Clone)]
pub struct RegionPartition {
    /// Region id per node slot; `NO_REGION` for terminals and dead slots.
    region_of: Vec<u32>,
    /// Member gates per region, each in topological order.
    members: Vec<Vec<NodeId>>,
    /// Input count of the partitioned graph, to tell terminals apart
    /// from unassigned gate slots.
    num_inputs: usize,
    /// Slot reuse generations at partition time
    /// ([`Mig::slot_generation`]). A partition held across rewrites
    /// (the convergence scheduler's is) would otherwise attribute a
    /// node recycled into a freed member slot to the dead member's
    /// region; [`RegionPartition::region_of_live`] compares generations
    /// to tell the two apart.
    gen_at_partition: Vec<u32>,
}

impl RegionPartition {
    /// Partitions the live gates of `mig` under the given strategy. With
    /// `max_regions == 1` (or a graph smaller than the region count)
    /// everything degenerates gracefully to fewer, larger regions.
    pub fn compute(mig: &Mig, strategy: PartitionStrategy) -> Self {
        match strategy {
            PartitionStrategy::FfrForest { max_regions } => Self::ffr_forest(mig, max_regions),
            PartitionStrategy::LevelBands { max_regions } => Self::level_bands(mig, max_regions),
        }
    }

    /// FFR forest: every fanout-free region lands entirely in one shard;
    /// whole FFRs are packed greedily (topological root order) so shards
    /// carry roughly equal gate counts.
    fn ffr_forest(mig: &Mig, max_regions: usize) -> Self {
        let ffr = FfrPartition::compute(mig);
        Self::from_ffr(mig, &ffr, max_regions)
    }

    /// Like [`RegionPartition::compute`] with the FFR-forest strategy,
    /// reusing an already computed [`FfrPartition`] (the shard driver
    /// needs the FFR view anyway for rewrite legality).
    pub fn from_ffr(mig: &Mig, ffr: &FfrPartition, max_regions: usize) -> Self {
        let n = mig.num_nodes();
        let topo = mig.topo_gates_shared();
        // Gates per FFR root, to balance shard sizes.
        let mut ffr_size = vec![0u32; n];
        for &g in topo.iter() {
            ffr_size[ffr.root_of(g) as usize] += 1;
        }
        let total = topo.len();
        let max_regions = max_regions.max(1);
        let target = total.div_ceil(max_regions).max(1);
        // Pack whole FFRs, in topological root order, until a shard
        // reaches the target size.
        let mut region_of_root = vec![NO_REGION; n];
        let mut region = 0u32;
        let mut filled = 0usize;
        for &root in ffr.roots() {
            if filled >= target && (region as usize) < max_regions - 1 {
                region += 1;
                filled = 0;
            }
            region_of_root[root as usize] = region;
            filled += ffr_size[root as usize] as usize;
        }
        let num_regions = if ffr.roots().is_empty() {
            0
        } else {
            region as usize + 1
        };
        let mut region_of = vec![NO_REGION; n];
        let mut members = vec![Vec::new(); num_regions];
        for &g in topo.iter() {
            let r = region_of_root[ffr.root_of(g) as usize];
            debug_assert_ne!(r, NO_REGION, "live gate outside the FFR forest");
            region_of[g as usize] = r;
            members[r as usize].push(g);
        }
        RegionPartition {
            region_of,
            members,
            num_inputs: mig.num_inputs(),
            gen_at_partition: capture_generations(mig),
        }
    }

    /// Level bands: region `k` holds the gates with levels in the `k`-th
    /// band of consecutive levels.
    fn level_bands(mig: &Mig, max_regions: usize) -> Self {
        let n = mig.num_nodes();
        let topo = mig.topo_gates_shared();
        let max_level = topo.iter().map(|&g| mig.level(g)).max().unwrap_or(0);
        let max_regions = max_regions.max(1) as u32;
        // Gate levels start at 1; band height so that at most
        // `max_regions` bands cover levels 1..=max_level.
        let height = max_level.div_ceil(max_regions).max(1);
        let num_regions = if max_level == 0 {
            0
        } else {
            max_level.div_ceil(height) as usize
        };
        let mut region_of = vec![NO_REGION; n];
        let mut members = vec![Vec::new(); num_regions];
        for &g in topo.iter() {
            let r = (mig.level(g) - 1) / height;
            region_of[g as usize] = r;
            members[r as usize].push(g);
        }
        RegionPartition {
            region_of,
            members,
            num_inputs: mig.num_inputs(),
            gen_at_partition: capture_generations(mig),
        }
    }

    /// Number of regions (possibly including empty ones).
    pub fn num_regions(&self) -> usize {
        self.members.len()
    }

    /// Number of regions with at least one member gate — the scheduler's
    /// full-sweep-equivalent work unit (its `skipped_clean` counter is
    /// measured against this).
    pub fn num_nonempty_regions(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// The region of `n`, or `None` for terminals, dead slots and nodes
    /// created on *appended* slots after the partition was computed. A
    /// node recycled into a freed member slot still reports the dead
    /// member's region here — partitions held across rewrites should
    /// use [`RegionPartition::region_of_live`] instead.
    pub fn region_of(&self, n: NodeId) -> Option<u32> {
        match self.region_of.get(n as usize) {
            Some(&r) if r != NO_REGION => Some(r),
            _ => None,
        }
    }

    /// Like [`RegionPartition::region_of`], but also `None` for nodes
    /// *recycled* into a freed member slot since the partition was
    /// computed (detected by slot-generation mismatch against the live
    /// graph) — such nodes belong to no region, so a scheduler keeps
    /// them queued as staleness instead of attributing them to the dead
    /// member's region.
    pub fn region_of_live(&self, mig: &Mig, n: NodeId) -> Option<u32> {
        let r = self.region_of(n)?;
        match self.gen_at_partition.get(n as usize) {
            Some(&g) if g == mig.slot_generation(n) => Some(r),
            _ => None,
        }
    }

    /// The member gates of region `r`, in topological order.
    pub fn members(&self, r: u32) -> &[NodeId] {
        &self.members[r as usize]
    }

    /// Whether any node of `nodes` lies outside region `r`. Terminals
    /// are exempt (they belong to every region's support); foreign,
    /// dead and post-partition gate slots count as crossings. This is
    /// the shard driver's boundary-conflict classification: a crossing
    /// footprint may collide with commits from other regions, while a
    /// region-local footprint can only collide with its own region's
    /// (disjoint) proposals.
    pub fn boundary_conflict(&self, r: u32, nodes: &[NodeId]) -> bool {
        nodes.iter().any(|&n| {
            if (n as usize) <= self.num_inputs {
                return false; // constant or primary input
            }
            self.region_of.get(n as usize).copied().unwrap_or(NO_REGION) != r
        })
    }

    /// Migrates the partition across a compaction ([`Mig::compact`]):
    /// region assignments, member lists and the generation snapshot are
    /// permuted to the new slot numbering; members whose slots were dead
    /// at compaction time drop out. Compaction preserves slot-generation
    /// *values* under the permutation, so [`RegionPartition::region_of_live`]
    /// keeps working against the compacted graph.
    pub fn remap(&mut self, map: &CompactMap) {
        if map.is_identity() {
            return;
        }
        let mut region_of = vec![NO_REGION; map.new_len()];
        let mut gen_at_partition = vec![0u32; map.new_len()];
        for old in 0..self.region_of.len().min(map.old_len()) {
            if let Some(new) = map.remap(old as NodeId) {
                region_of[new as usize] = self.region_of[old];
                gen_at_partition[new as usize] = self.gen_at_partition[old];
            }
        }
        self.region_of = region_of;
        self.gen_at_partition = gen_at_partition;
        for members in &mut self.members {
            // Live gates are renumbered in topological order, so the
            // remapped member list is *not* necessarily sorted by id —
            // but it stays topologically ordered, which is the invariant
            // the views rely on.
            *members = members.iter().filter_map(|&m| map.remap(m)).collect();
        }
    }

    /// Materializes the read view of region `r`: members, external
    /// inputs and boundary members (see [`RegionView`]).
    pub fn view(&self, mig: &Mig, r: u32) -> RegionView {
        let members = self.members[r as usize].clone();
        let mut inputs = Vec::new();
        let mut seen_input = std::collections::HashSet::new();
        // References into the region from its own members, to tell
        // internal from external fanout without walking fanout lists.
        let mut internal_refs = std::collections::HashMap::new();
        for &m in &members {
            for s in mig.fanins(m) {
                let f = s.node();
                if f == 0 {
                    continue; // the constant is shared, never an input
                }
                if self.region_of(f) == Some(r) {
                    *internal_refs.entry(f).or_insert(0u32) += 1;
                } else if seen_input.insert(f) {
                    inputs.push(f);
                }
            }
        }
        let boundary = members
            .iter()
            .copied()
            .filter(|&m| mig.fanout_count(m) > internal_refs.get(&m).copied().unwrap_or(0))
            .collect();
        RegionView {
            region: r,
            members,
            inputs,
            boundary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Signal;

    /// Two xor cones sharing nothing, merged by a top gate.
    fn two_cones() -> (Mig, Signal, Signal, Signal) {
        let mut m = Mig::new(4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let x = m.xor(a, b);
        let y = m.xor(c, d);
        let top = m.maj(x, y, a);
        m.add_output(top);
        (m, x, y, top)
    }

    #[test]
    fn ffr_forest_keeps_ffrs_whole_and_balances() {
        let (m, x, y, top) = two_cones();
        let p = RegionPartition::compute(&m, PartitionStrategy::FfrForest { max_regions: 3 });
        assert!(p.num_regions() >= 1 && p.num_regions() <= 3);
        // Every gate is assigned, and every FFR lands in one region.
        let ffr = FfrPartition::compute(&m);
        for g in m.gates() {
            let r = p.region_of(g).expect("live gate assigned");
            assert_eq!(
                p.region_of(ffr.root_of(g)),
                Some(r),
                "gate {g} split from its FFR root"
            );
        }
        let total: usize = (0..p.num_regions() as u32)
            .map(|r| p.members(r).len())
            .sum();
        assert_eq!(total, m.num_gates());
        let _ = (x, y, top);
    }

    #[test]
    fn level_bands_respect_level_ranges() {
        let mut m = Mig::new(3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let mut t = m.maj(a, b, c);
        for _ in 0..7 {
            t = m.maj(t, a, !b);
        }
        m.add_output(t);
        let p = RegionPartition::compute(&m, PartitionStrategy::LevelBands { max_regions: 4 });
        assert_eq!(p.num_regions(), 4);
        for g in m.gates() {
            let r = p.region_of(g).unwrap();
            assert_eq!(r, (m.level(g) - 1) / 2, "band of gate {g}");
        }
        // Members are in topological order within each band.
        for r in 0..p.num_regions() as u32 {
            let mem = p.members(r);
            for w in mem.windows(2) {
                assert!(m.level(w[0]) <= m.level(w[1]));
            }
        }
    }

    #[test]
    fn view_reports_inputs_and_boundary() {
        let (m, x, y, top) = two_cones();
        let p = RegionPartition::compute(&m, PartitionStrategy::LevelBands { max_regions: 1 });
        assert_eq!(p.num_regions(), 1);
        let v = p.view(&m, 0);
        assert_eq!(v.members.len(), m.num_gates());
        // All inputs are primary inputs here; the constant is excluded.
        for &i in &v.inputs {
            assert!(m.is_input(i));
        }
        // Only the output driver is boundary (everything else is
        // referenced inside the single region).
        assert_eq!(v.boundary, vec![top.node()]);
        let _ = (x, y);
    }

    #[test]
    fn boundary_conflict_classifies_footprints() {
        let (m, x, y, _top) = two_cones();
        let p = RegionPartition::compute(&m, PartitionStrategy::FfrForest { max_regions: 8 });
        let rx = p.region_of(x.node()).unwrap();
        let ry = p.region_of(y.node()).unwrap();
        assert!(
            !p.boundary_conflict(rx, &[x.node()]),
            "own member is region-local"
        );
        if rx != ry {
            assert!(
                p.boundary_conflict(rx, &[x.node(), y.node()]),
                "foreign gate crosses the boundary"
            );
        }
        // Terminals never cross.
        assert!(!p.boundary_conflict(rx, &[]));
    }

    #[test]
    fn region_of_live_rejects_recycled_slots() {
        // A node recycled into a freed member slot keeps the slot id but
        // is not the member: the raw lookup still reports the old
        // region (slot-indexed), the generation-aware lookup must not.
        let mut m = Mig::new(4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let x = m.xor(a, b);
        let top = m.maj(x, c, d);
        m.add_output(top);
        let p = RegionPartition::compute(&m, PartitionStrategy::LevelBands { max_regions: 4 });
        let victim = x.node();
        let r = p.region_of(victim).expect("member assigned");
        assert_eq!(p.region_of_live(&m, victim), Some(r), "live member");
        // Kill the member's cone, then recycle its slot for a new gate.
        assert!(m.replace_node(victim, a));
        let before_nodes = m.num_nodes();
        let fresh = m.maj(a, !c, d);
        assert!(
            (fresh.node() as usize) < before_nodes,
            "test premise: the new gate recycles a freed slot"
        );
        assert!(m.is_gate(fresh.node()));
        assert_eq!(
            p.region_of_live(&m, fresh.node()),
            None,
            "recycled slot attributed to the dead member's region"
        );
        // Appended-slot nodes are unassigned under both lookups.
        let appended = m.maj(fresh, c, !d);
        if (appended.node() as usize) >= p.region_of.len() {
            assert_eq!(p.region_of(appended.node()), None);
            assert_eq!(p.region_of_live(&m, appended.node()), None);
        }
    }

    #[test]
    fn remap_migrates_partition_across_compaction() {
        let mut m = Mig::new(4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let x = m.xor(a, b);
        let y = m.xor(c, d);
        let top = m.maj(x, y, a);
        m.add_output(top);
        let mut p = RegionPartition::compute(&m, PartitionStrategy::LevelBands { max_regions: 4 });
        let old_regions: Vec<_> = m.gates().map(|g| (g, p.region_of(g).unwrap())).collect();
        // Kill the top gate so compaction has a hole to squeeze out.
        assert!(m.replace_node(top.node(), x));
        m.sweep();
        let map = m.compact();
        assert!(!map.is_identity());
        p.remap(&map);
        let total: usize = (0..p.num_regions() as u32)
            .map(|r| p.members(r).len())
            .sum();
        assert_eq!(total, m.num_gates(), "dead members dropped");
        let mut survivors = 0;
        for (old, region) in old_regions {
            let Some(g) = map.remap(old) else { continue };
            survivors += 1;
            assert!(m.is_gate(g), "remapped member is live");
            assert_eq!(p.region_of(g), Some(region), "region carried across");
            assert_eq!(
                p.region_of_live(&m, g),
                Some(region),
                "generation snapshot carried across"
            );
            assert!(p.members(region).contains(&g));
        }
        assert_eq!(survivors, m.num_gates(), "every live gate was checked");
        // An identity remap (fixpoint compaction) is a no-op.
        let again = m.compact();
        assert!(again.is_identity());
        let before = p.clone();
        p.remap(&again);
        assert_eq!(format!("{before:?}"), format!("{p:?}"));
    }

    #[test]
    fn empty_graph_has_no_regions() {
        let mut m = Mig::new(2);
        let a = m.input(0);
        m.add_output(a);
        for s in [
            PartitionStrategy::FfrForest { max_regions: 4 },
            PartitionStrategy::LevelBands { max_regions: 4 },
        ] {
            let p = RegionPartition::compute(&m, s);
            assert_eq!(p.num_regions(), 0);
            assert_eq!(p.region_of(a.node()), None);
        }
    }
}
