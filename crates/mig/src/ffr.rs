//! Fanout-free region (FFR) partitioning (paper §IV-C).
//!
//! Fanout in the logic representation typically results from structural
//! hashing; rewriting across fanout boundaries can undo sharing. The
//! functional-hashing variants TF/TFD/BF therefore partition the MIG into
//! fanout-free regions first and optimize each region independently: within
//! a region, every internal node has exactly one fanout, so no replacement
//! can strand a shared node.

use crate::{Mig, NodeId};

/// A partition of an MIG's gates into fanout-free regions.
#[derive(Debug, Clone)]
pub struct FfrPartition {
    /// For each node id: the root of its region. Terminals and dangling
    /// gates map to themselves.
    region_root: Vec<NodeId>,
    /// Region roots in topological order.
    roots: Vec<NodeId>,
}

impl FfrPartition {
    /// Computes the partition for `mig`.
    ///
    /// A gate is a region *root* when it drives a primary output, has no
    /// fanout at all, or has two or more fanout references; every other
    /// gate (exactly one gate fanout, no output fanout) belongs to the
    /// region of its unique parent.
    pub fn compute(mig: &Mig) -> Self {
        let n = mig.num_nodes();
        let topo = mig.topo_gates();
        let mut gate_refs = vec![0u32; n];
        let mut out_ref = vec![false; n];
        // The unique gate parent of single-fanout nodes (valid only when
        // gate_refs == 1).
        let mut parent = vec![0 as NodeId; n];
        for &g in &topo {
            for s in mig.fanins(g) {
                // A normalized gate never references the same node twice,
                // so this counts distinct parent edges.
                gate_refs[s.node() as usize] += 1;
                parent[s.node() as usize] = g;
            }
        }
        for o in mig.outputs() {
            out_ref[o.node() as usize] = true;
        }

        let mut region_root: Vec<NodeId> = (0..n as u32).collect();
        let mut roots = Vec::new();
        // Reverse topological order: parents are visited before children,
        // so a child can inherit its parent's region root directly.
        for &g in topo.iter().rev() {
            let gi = g as usize;
            let is_root = out_ref[gi] || gate_refs[gi] != 1;
            if is_root {
                region_root[gi] = g;
            } else {
                region_root[gi] = region_root[parent[gi] as usize];
            }
        }
        for &g in &topo {
            if region_root[g as usize] == g {
                roots.push(g);
            }
        }
        FfrPartition { region_root, roots }
    }

    /// The root of the region containing `n`. Nodes created after the
    /// partition was computed map to themselves (their own region), so
    /// region-legality checks treat them as foreign.
    pub fn root_of(&self, n: NodeId) -> NodeId {
        self.region_root.get(n as usize).copied().unwrap_or(n)
    }

    /// Whether `n` is a region root.
    pub fn is_root(&self, n: NodeId) -> bool {
        self.root_of(n) == n
    }

    /// All region roots in topological order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The gates of the region rooted at `root` (including the root), in
    /// topological order.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a region root.
    pub fn members(&self, root: NodeId) -> Vec<NodeId> {
        assert!(self.is_root(root), "node {root} is not a region root");
        (0..self.region_root.len() as u32)
            .filter(|&n| self.region_root[n as usize] == root)
            .filter(|&n| n == root || self.region_root[n as usize] != n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mig, Signal};

    #[test]
    fn shared_node_becomes_root() {
        let mut m = Mig::new(4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let shared = m.maj(a, b, c); // feeds two parents -> root
        let p1 = m.maj(shared, c, d);
        let p2 = m.maj(shared, a, d);
        let top = m.maj(p1, p2, b);
        m.add_output(top);

        let p = FfrPartition::compute(&m);
        assert!(p.is_root(shared.node()));
        assert!(p.is_root(top.node()));
        assert!(!p.is_root(p1.node()));
        assert!(!p.is_root(p2.node()));
        assert_eq!(p.root_of(p1.node()), top.node());
        assert_eq!(p.root_of(p2.node()), top.node());
        let mut members = p.members(top.node());
        members.sort_unstable();
        assert_eq!(members, vec![p1.node(), p2.node(), top.node()]);
    }

    #[test]
    fn output_driver_is_root_even_with_single_fanout() {
        let mut m = Mig::new(3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let g1 = m.maj(a, b, c);
        let g2 = m.maj(g1, a, b);
        m.add_output(g1); // g1 drives an output and g2
        m.add_output(g2);
        let p = FfrPartition::compute(&m);
        assert!(p.is_root(g1.node()));
        assert!(p.is_root(g2.node()));
    }

    #[test]
    fn chain_forms_single_region() {
        let mut m = Mig::new(5);
        let mut acc = m.input(0);
        for i in 1..5 {
            let x = m.input(i);
            acc = m.maj(acc, x, Signal::ZERO);
        }
        m.add_output(acc);
        let p = FfrPartition::compute(&m);
        assert_eq!(p.roots().len(), 1);
        assert_eq!(p.roots()[0], acc.node());
        assert_eq!(p.members(acc.node()).len(), 4);
    }
}
