//! Inline small-list storage for per-node fanout references.
//!
//! The managed network keeps one fanout reference list per slot, touched
//! on every `node_for_key`, `replace_node`, rewire and legality recheck.
//! With `Vec<Vec<u32>>` each list is a separate heap allocation behind a
//! pointer chase; the median MIG gate has fanout 1–3, so nearly every
//! access pays a cache miss for at most three words of payload.
//! [`FanoutList`] stores the first [`INLINE_FANOUTS`] entries inline in
//! the slot array itself and spills to a boxed `Vec` only for
//! high-fanout nodes (constants, shared subexpressions).
//!
//! Semantics mirror the `Vec` operations the graph code was written
//! against: `push` appends and returns the entry's position,
//! `swap_remove` moves the last entry into the hole — so the
//! back-pointer repair protocol (`fanout_pos` / `out_pos`) carries over
//! unchanged. Entries are yielded and addressed *by value*: positions
//! [0, `INLINE_FANOUTS`) live inline, the rest at
//! `spill[pos - INLINE_FANOUTS]`, and the spill length is kept exactly
//! `len - INLINE_FANOUTS` whenever it is populated.

/// Entries stored inline before spilling to the heap. Four covers the
/// overwhelming majority of MIG fanouts while keeping the struct at 32
/// bytes (two per cache line).
pub const INLINE_FANOUTS: usize = 4;

/// A fanout reference list: up to [`INLINE_FANOUTS`] entries inline,
/// heap spill beyond that.
#[derive(Debug, Default)]
pub struct FanoutList {
    len: u32,
    inline: [u32; INLINE_FANOUTS],
    // Boxed on purpose: an inline `Option<Vec>` is 24 bytes and would
    // push the struct past 32; the extra indirection is only paid by the
    // rare high-fanout nodes that spill at all.
    #[allow(clippy::box_collection)]
    spill: Option<Box<Vec<u32>>>,
}

impl FanoutList {
    /// An empty list (no heap allocation).
    pub fn new() -> Self {
        FanoutList::default()
    }

    /// Builds a list from a slice of entries.
    pub fn from_slice(entries: &[u32]) -> Self {
        let mut l = FanoutList::new();
        for &e in entries {
            l.push(e);
        }
        l
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry at `pos` (by value; panics when out of bounds).
    #[inline]
    pub fn get(&self, pos: usize) -> u32 {
        assert!(pos < self.len(), "fanout position {pos} out of bounds");
        if pos < INLINE_FANOUTS {
            self.inline[pos]
        } else {
            self.spill.as_ref().unwrap()[pos - INLINE_FANOUTS]
        }
    }

    /// Overwrites the entry at `pos` (panics when out of bounds).
    #[inline]
    pub fn set(&mut self, pos: usize, v: u32) {
        assert!(pos < self.len(), "fanout position {pos} out of bounds");
        if pos < INLINE_FANOUTS {
            self.inline[pos] = v;
        } else {
            self.spill.as_mut().unwrap()[pos - INLINE_FANOUTS] = v;
        }
    }

    /// Appends an entry and returns its position.
    #[inline]
    pub fn push(&mut self, v: u32) -> u32 {
        let pos = self.len();
        if pos < INLINE_FANOUTS {
            self.inline[pos] = v;
        } else {
            self.spill.get_or_insert_with(Default::default).push(v);
        }
        self.len += 1;
        pos as u32
    }

    /// Removes the entry at `pos` by moving the last entry into the hole
    /// (`Vec::swap_remove` semantics); returns the removed value.
    #[inline]
    pub fn swap_remove(&mut self, pos: usize) -> u32 {
        let last = self.len() - 1;
        let removed = self.get(pos);
        if pos != last {
            let moved = self.get(last);
            self.set(pos, moved);
        }
        if last >= INLINE_FANOUTS {
            self.spill.as_mut().unwrap().pop();
        }
        self.len -= 1;
        removed
    }

    /// Position of the *last* entry equal to `needle`, scanning
    /// backwards (spill first, then inline). Hand-rolled because the
    /// two-segment iterator cannot implement `ExactSizeIterator`, which
    /// `Iterator::rposition` requires.
    pub fn rposition(&self, needle: u32) -> Option<usize> {
        if let Some(spill) = &self.spill {
            let tail = self.len().saturating_sub(INLINE_FANOUTS);
            if let Some(i) = spill[..tail].iter().rposition(|&e| e == needle) {
                return Some(INLINE_FANOUTS + i);
            }
        }
        let head = self.len().min(INLINE_FANOUTS);
        self.inline[..head].iter().rposition(|&e| e == needle)
    }

    /// Iterates the entries by value, in position order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let head = &self.inline[..self.len().min(INLINE_FANOUTS)];
        let tail: &[u32] = match &self.spill {
            Some(s) => &s[..self.len() - INLINE_FANOUTS.min(self.len())],
            None => &[],
        };
        head.iter().copied().chain(tail.iter().copied())
    }

    /// Copies the entries into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Removes all entries (keeps any spill capacity for reuse).
    pub fn clear(&mut self) {
        self.len = 0;
        if let Some(s) = &mut self.spill {
            s.clear();
        }
    }

    /// Heap bytes owned by this list (the spill allocation), for the
    /// memory gauges.
    pub fn heap_bytes(&self) -> usize {
        self.spill
            .as_ref()
            .map(|s| std::mem::size_of::<Vec<u32>>() + s.capacity() * 4)
            .unwrap_or(0)
    }
}

impl Clone for FanoutList {
    fn clone(&self) -> Self {
        FanoutList {
            len: self.len,
            inline: self.inline,
            // Drop empty spill boxes instead of cloning their capacity:
            // clones are fresh graphs, not in-place workspaces.
            spill: match &self.spill {
                Some(s) if !s.is_empty() => Some(s.clone()),
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_returns_positions_across_the_spill_boundary() {
        let mut l = FanoutList::new();
        for i in 0..10u32 {
            assert_eq!(l.push(100 + i), i);
        }
        assert_eq!(l.len(), 10);
        assert_eq!(l.to_vec(), (100..110).collect::<Vec<u32>>());
        for i in 0..10 {
            assert_eq!(l.get(i), 100 + i as u32);
        }
    }

    #[test]
    fn swap_remove_matches_vec_semantics() {
        for n in 1..12usize {
            for pos in 0..n {
                let mut l = FanoutList::new();
                let mut v: Vec<u32> = Vec::new();
                for i in 0..n as u32 {
                    l.push(i * 7);
                    v.push(i * 7);
                }
                assert_eq!(l.swap_remove(pos), v.swap_remove(pos));
                assert_eq!(l.to_vec(), v, "n={n} pos={pos}");
            }
        }
    }

    #[test]
    fn rposition_scans_backwards_over_both_segments() {
        let mut l = FanoutList::new();
        for e in [5, 9, 5, 1, 2, 5, 3] {
            l.push(e);
        }
        assert_eq!(l.rposition(5), Some(5)); // in the spill segment
        assert_eq!(l.rposition(9), Some(1)); // inline only
        assert_eq!(l.rposition(42), None);
        let mut short = FanoutList::from_slice(&[7, 8]);
        assert_eq!(short.rposition(7), Some(0));
        short.swap_remove(0);
        assert_eq!(short.rposition(7), None);
    }

    #[test]
    fn set_and_iter_cover_spill_entries() {
        let mut l = FanoutList::from_slice(&[0, 1, 2, 3, 4, 5]);
        l.set(5, 50);
        l.set(0, 99);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![99, 1, 2, 3, 4, 50]);
    }

    #[test]
    fn shrink_back_into_inline_then_regrow() {
        let mut l = FanoutList::from_slice(&[1, 2, 3, 4, 5, 6]);
        while l.len() > 2 {
            l.swap_remove(l.len() - 1);
        }
        assert_eq!(l.to_vec(), vec![1, 2]);
        for e in [10, 11, 12, 13] {
            l.push(e);
        }
        assert_eq!(l.len(), 6);
        assert_eq!(l.to_vec(), vec![1, 2, 10, 11, 12, 13]);
        // A clone of a shrunk list drops the empty spill box.
        let mut shrunk = FanoutList::from_slice(&[1, 2, 3, 4, 5]);
        shrunk.swap_remove(4);
        let c = shrunk.clone();
        assert_eq!(c.heap_bytes(), 0);
        assert_eq!(c.to_vec(), shrunk.to_vec());
    }

    #[test]
    fn clear_resets_but_from_slice_roundtrips() {
        let mut l = FanoutList::from_slice(&[9; 7]);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.to_vec(), Vec::<u32>::new());
        assert_eq!(l.push(3), 0);
        assert_eq!(l.to_vec(), vec![3]);
    }
}
