//! Engine-agnostic propose/commit sharding: the round protocol that lets
//! any local-rewriting engine run in parallel over a [`RegionPartition`].
//!
//! The protocol was born in the functional-hashing crate (parallel cut
//! replacement) but nothing in it is specific to cuts: a *proposal* is an
//! opaque engine payload plus a **footprint** (the round-start nodes its
//! analysis depends on), an expected **gain**, and a **legality recheck**
//! performed at commit time against the live graph. This module owns the
//! generic round loop; engines plug in through [`ProposeEngine`]:
//!
//! 1. **Partition.** [`ProposeEngine::begin_round`] carves the live gates
//!    into regions (the engine picks the strategy — FFR forest, level
//!    bands, …) and prepares whatever per-round read state its workers
//!    need.
//! 2. **Propose.** Worker threads (`std::thread::scope`, work-stealing
//!    over the active region list) call [`ProposeEngine::propose`]
//!    read-only on a frozen graph; results land in per-region slots so
//!    commit order is independent of scheduling.
//! 3. **Commit.** Proposals are applied serially in a stable region
//!    order (regions descending, then the worker's in-region order). A
//!    proposal whose footprint intersects anything dirtied earlier in
//!    the round is refused and its region retries next round; otherwise
//!    [`ProposeEngine::commit`] re-checks legality against the live
//!    graph and applies (or refuses) the substitution.
//!
//! Rounds repeat until no proposal commits; only regions invalidated by
//! the previous round's commits or conflicts are re-proposed. Engines
//! whose rounds are not individually monotone set a [`ShardConfig::guard`]
//! metric: such rounds run against a snapshot and are rolled back (and
//! the loop stopped) when the metric fails to improve — the same
//! guarantee the serial convergence loops provide.
//!
//! For a fixed input graph, engine and thread count the resulting
//! netlist is bit-deterministic: the commit order never depends on
//! worker scheduling, and stale regions are collected in a `BTreeSet`.

use crate::{Mig, NodeId, RegionPartition};
use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What [`ProposeEngine::commit`] did with one proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitVerdict {
    /// The proposal was applied with this many individual substitutions.
    Applied {
        /// Substitutions performed (a region-level proposal may reroute
        /// several boundary gates; a single-cut proposal performs one).
        replacements: u64,
    },
    /// The live-graph legality recheck failed (the graph drifted in a
    /// way the footprint could not see); the owning region retries next
    /// round.
    Conflicted,
    /// The proposal turned out to be a no-op (e.g. a substitution that
    /// would close a cycle through shared logic, retracted on the spot).
    /// Retrying would refuse again, so this is *not* a conflict.
    Rejected,
}

/// A rewriting engine pluggable into [`run_shard_rounds`].
///
/// The engine analyzes regions read-only ([`ProposeEngine::propose`] runs
/// concurrently on a frozen `&Mig`) and applies its proposals serially
/// ([`ProposeEngine::commit`], which must re-check legality itself — the
/// driver only guarantees that the proposal's footprint is structurally
/// untouched within the current round).
pub trait ProposeEngine: Sync {
    /// One proposed local rewrite (opaque to the driver).
    type Proposal: Send;
    /// Per-round read state shared by all workers (e.g. an FFR view of
    /// the frozen graph). Use `()` when none is needed.
    type RoundState: Sync;

    /// Partitions the live gates for this round and prepares the round
    /// state. `max_regions` tracks the current graph size (shrinking
    /// graphs coalesce into fewer, larger regions). `invalidated` lists
    /// the nodes structurally changed by the previous round's commits —
    /// engines carrying analysis caches across rounds (cut lists, …)
    /// invalidate them here.
    fn begin_round(
        &self,
        mig: &Mig,
        max_regions: usize,
        invalidated: &[NodeId],
    ) -> (RegionPartition, Self::RoundState);

    /// Generates the proposals of one region, read-only. A worker's own
    /// proposals should not overlap (the driver would refuse the later
    /// one as a conflict).
    fn propose(
        &self,
        mig: &Mig,
        partition: &RegionPartition,
        state: &Self::RoundState,
        region: u32,
    ) -> Vec<Self::Proposal>;

    /// The round-start nodes this proposal's analysis depends on. The
    /// driver refuses the proposal if any of them was structurally
    /// touched earlier in the round.
    fn footprint<'a>(&self, proposal: &'a Self::Proposal) -> &'a [NodeId];

    /// The proposal's expected gain (accumulated into [`ShardStats`]).
    fn gain(&self, proposal: &Self::Proposal) -> i64;

    /// Re-checks the proposal against the live graph and applies it.
    fn commit(&self, mig: &mut Mig, proposal: Self::Proposal) -> CommitVerdict;

    /// Hook for rounds whose partition degenerates to a single region.
    /// Engines whose single-region proposal would merely reproduce their
    /// serial pass (with perturbed tie-breaking) can run the serial pass
    /// directly here and return `Some((replacements, gain))`; the
    /// default `None` runs the regular propose/commit machinery.
    fn whole_graph_round(&self, _mig: &mut Mig) -> Option<(u64, i64)> {
        None
    }
}

/// A round-acceptance metric: a lexicographic pair (smaller is better)
/// evaluated on the whole graph, e.g. `(gates, depth)` for a size
/// script or `(depth, gates)` for a depth script.
pub type RoundMetric = fn(&Mig) -> (u64, u64);

/// Tuning of the sharded round loop.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Worker threads for the propose phase.
    pub threads: usize,
    /// Regions per worker thread: over-partitioning smooths load
    /// imbalance between shards of unequal rewriting opportunity.
    pub regions_per_thread: usize,
    /// Minimum gates per region: small graphs are not fragmented below
    /// this (a sliver region sees too little context, and per-region
    /// overhead would dominate).
    pub min_region_size: usize,
    /// Backstop on propose/commit rounds. Committing rounds improve the
    /// graph, so this is never the expected exit.
    pub max_rounds: usize,
    /// Optional per-round acceptance metric (lexicographic, smaller is
    /// better). When set, every round runs against a snapshot and is
    /// rolled back — ending the loop — if the metric fails to improve.
    /// Engines whose commits are individually improving leave this
    /// `None` and skip the snapshot cost.
    pub guard: Option<RoundMetric>,
}

impl ShardConfig {
    /// Default tuning for `threads` workers (4 regions per thread,
    /// 24-gate region floor, 64-round backstop, no guard).
    pub fn new(threads: usize) -> Self {
        ShardConfig {
            threads: threads.max(1),
            regions_per_thread: 4,
            min_region_size: 24,
            max_rounds: 64,
            guard: None,
        }
    }

    /// The region bound for the current graph: follows the live gate
    /// count, so shrinking graphs coalesce toward the single-region
    /// degenerate case (equal to the serial engine).
    pub fn max_regions(&self, mig: &Mig) -> usize {
        (self.threads * self.regions_per_thread)
            .min(mig.num_gates() / self.min_region_size)
            .max(1)
    }

    /// Whether `mig` is large enough for sharding to beat a serial pass.
    /// Callers should fall back to their serial engine when this is
    /// false.
    pub fn shardable(&self, mig: &Mig) -> bool {
        (self.threads * self.regions_per_thread).min(mig.num_gates() / self.min_region_size) > 1
    }
}

/// What happened to one round's proposals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Proposals applied (a region proposal counts once even when it
    /// performs several substitutions).
    pub committed: usize,
    /// Proposals refused — by the driver's footprint check or the
    /// engine's live recheck (their regions retry next round).
    pub conflicted: usize,
    /// Individual substitutions performed.
    pub replacements: u64,
    /// Sum of expected gains of the committed proposals.
    pub gain: i64,
}

/// Accumulated statistics of a [`run_shard_rounds`] call.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Rounds run (including a final empty or rolled-back round).
    pub rounds: usize,
    /// Total proposals committed.
    pub committed: u64,
    /// Total proposals refused for retry.
    pub conflicted: u64,
    /// Total individual substitutions.
    pub replacements: u64,
    /// Total expected gain of committed proposals.
    pub gain: i64,
}

/// Runs propose/commit rounds to quiescence (no proposal commits, a
/// guarded round fails to improve, or `cfg.max_rounds` is hit).
///
/// Sweeps dangling cones and consumes the dirty log up front (regions
/// are analyzed in isolation; dangling logic would pollute membership,
/// boundary sets and gain estimates), and sweeps again before returning.
pub fn run_shard_rounds<E: ProposeEngine>(
    mig: &mut Mig,
    engine: &E,
    cfg: &ShardConfig,
) -> ShardStats {
    let mut stats = ShardStats::default();
    mig.sweep();
    let _ = mig.drain_dirty();
    // Nodes whose regions must be re-proposed next round.
    let mut stale: HashSet<NodeId> = HashSet::new();
    // Nodes structurally changed last round (for engine cache refresh).
    let mut invalidated: Vec<NodeId> = Vec::new();
    let mut first_round = true;
    for _ in 0..cfg.max_rounds {
        let max_regions = cfg.max_regions(mig);
        let (partition, state) = engine.begin_round(mig, max_regions, &invalidated);
        invalidated.clear();
        // Active regions: everything on the first round, afterwards only
        // the regions invalidated by commits or conflicts. Descending
        // region order = topmost shards first, mirroring the serial
        // top-down traversals; a `BTreeSet` makes the order independent
        // of hash-set iteration.
        let active: Vec<u32> = if first_round {
            (0..partition.num_regions() as u32)
                .filter(|&r| !partition.members(r).is_empty())
                .rev()
                .collect()
        } else {
            let set: BTreeSet<u32> = stale
                .iter()
                .filter_map(|&n| partition.region_of(n))
                .collect();
            set.into_iter().rev().collect()
        };
        first_round = false;
        stale.clear();
        if active.is_empty() {
            break;
        }
        let before_metric = cfg.guard.map(|metric| metric(mig));
        let snapshot = before_metric.is_some().then(|| mig.clone());
        let outcome = if partition.num_regions() <= 1 {
            match engine.whole_graph_round(mig) {
                Some((replacements, gain)) => {
                    for n in mig.drain_dirty() {
                        stale.insert(n);
                        invalidated.push(n);
                    }
                    RoundOutcome {
                        committed: usize::from(replacements > 0),
                        conflicted: 0,
                        replacements,
                        gain,
                    }
                }
                None => propose_and_commit(
                    mig,
                    engine,
                    &partition,
                    &state,
                    &active,
                    cfg.threads,
                    &mut stale,
                    &mut invalidated,
                ),
            }
        } else {
            propose_and_commit(
                mig,
                engine,
                &partition,
                &state,
                &active,
                cfg.threads,
                &mut stale,
                &mut invalidated,
            )
        };
        stats.rounds += 1;
        if outcome.committed == 0 {
            break;
        }
        if let (Some(metric), Some(before)) = (cfg.guard, before_metric) {
            if metric(mig) >= before {
                // The round failed to improve (gains are estimates;
                // structural hashing and refused substitutions shift the
                // real counts): roll back, like the serial convergence
                // loops do.
                if let Some(snap) = snapshot {
                    *mig = snap;
                }
                break;
            }
        }
        stats.committed += outcome.committed as u64;
        stats.conflicted += outcome.conflicted as u64;
        stats.replacements += outcome.replacements;
        stats.gain += outcome.gain;
    }
    mig.sweep();
    stats
}

/// One round's propose phase (parallel, read-only, per-region result
/// slots) followed by its commit phase.
#[allow(clippy::too_many_arguments)]
fn propose_and_commit<E: ProposeEngine>(
    mig: &mut Mig,
    engine: &E,
    partition: &RegionPartition,
    state: &E::RoundState,
    active: &[u32],
    threads: usize,
    stale: &mut HashSet<NodeId>,
    invalidated: &mut Vec<NodeId>,
) -> RoundOutcome {
    // Workers steal region indices off a shared counter; results land in
    // per-region slots so the commit order is independent of scheduling.
    let slots: Vec<Mutex<Vec<E::Proposal>>> =
        active.iter().map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    let frozen: &Mig = mig;
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(active.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= active.len() {
                    break;
                }
                let props = engine.propose(frozen, partition, state, active[i]);
                *slots[i].lock().unwrap() = props;
            });
        }
    });
    let proposals: Vec<E::Proposal> = slots
        .into_iter()
        .flat_map(|m| m.into_inner().unwrap())
        .collect();
    commit_round(mig, engine, proposals, stale, invalidated)
}

/// Applies one round's proposals in order (the serial commit phase).
/// `stale` receives the nodes whose regions must be re-proposed next
/// round: everything dirtied by a commit, plus the footprints of
/// conflicted proposals. Exposed so engines can regression-test their
/// commit behavior against hand-built proposals.
pub fn commit_proposals<E: ProposeEngine>(
    mig: &mut Mig,
    engine: &E,
    proposals: Vec<E::Proposal>,
    stale: &mut HashSet<NodeId>,
) -> RoundOutcome {
    let mut invalidated = Vec::new();
    commit_round(mig, engine, proposals, stale, &mut invalidated)
}

fn commit_round<E: ProposeEngine>(
    mig: &mut Mig,
    engine: &E,
    proposals: Vec<E::Proposal>,
    stale: &mut HashSet<NodeId>,
    invalidated: &mut Vec<NodeId>,
) -> RoundOutcome {
    let mut outcome = RoundOutcome::default();
    // Nodes touched earlier in this round; a proposal whose footprint
    // intersects it was analyzed against a graph that no longer exists.
    let mut round_dirty: HashSet<NodeId> = HashSet::new();
    for prop in proposals {
        if engine
            .footprint(&prop)
            .iter()
            .any(|n| round_dirty.contains(n))
        {
            outcome.conflicted += 1;
            stale.extend(engine.footprint(&prop).iter().copied());
            continue;
        }
        let gain = engine.gain(&prop);
        // The commit consumes the proposal; keep the footprint for the
        // engine-side conflict verdict.
        let footprint: Vec<NodeId> = engine.footprint(&prop).to_vec();
        match engine.commit(mig, prop) {
            CommitVerdict::Applied { replacements } => {
                outcome.committed += 1;
                outcome.replacements += replacements;
                outcome.gain += gain;
            }
            CommitVerdict::Conflicted => {
                outcome.conflicted += 1;
                stale.extend(footprint);
            }
            CommitVerdict::Rejected => {}
        }
        for n in mig.drain_dirty() {
            round_dirty.insert(n);
            stale.insert(n);
            invalidated.push(n);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionStrategy, Signal};

    /// A toy engine removing redundant conjunction: `<0 a <0 a b>>`
    /// computes the same function as its inner gate, so the root can be
    /// substituted by the inner signal (gain 1).
    struct RedundantAndEngine;

    struct AndProposal {
        root: NodeId,
        footprint: Vec<NodeId>,
    }

    /// Matches the pattern at `root` and returns the replacement signal.
    fn redundant_and(mig: &Mig, root: NodeId) -> Option<Signal> {
        if !mig.is_gate(root) {
            return None;
        }
        let ops = mig.fanins(root);
        if ops[0] != Signal::ZERO {
            return None;
        }
        for (i, &inner) in ops.iter().enumerate().skip(1) {
            if inner.is_complemented() || !mig.is_gate(inner.node()) {
                continue;
            }
            let other = ops[3 - i];
            let inner_ops = mig.fanins(inner.node());
            if inner_ops[0] == Signal::ZERO && inner_ops.contains(&other) {
                return Some(inner);
            }
        }
        None
    }

    impl ProposeEngine for RedundantAndEngine {
        type Proposal = AndProposal;
        type RoundState = ();

        fn begin_round(
            &self,
            mig: &Mig,
            max_regions: usize,
            _invalidated: &[NodeId],
        ) -> (RegionPartition, ()) {
            let p = RegionPartition::compute(mig, PartitionStrategy::LevelBands { max_regions });
            (p, ())
        }

        fn propose(
            &self,
            mig: &Mig,
            partition: &RegionPartition,
            _state: &(),
            region: u32,
        ) -> Vec<AndProposal> {
            let mut props = Vec::new();
            let mut claimed: HashSet<NodeId> = HashSet::new();
            for &v in partition.members(region).iter().rev() {
                if claimed.contains(&v) {
                    continue;
                }
                if let Some(inner) = redundant_and(mig, v) {
                    let footprint = vec![v, inner.node()];
                    claimed.extend(footprint.iter().copied());
                    props.push(AndProposal { root: v, footprint });
                }
            }
            props
        }

        fn footprint<'a>(&self, p: &'a AndProposal) -> &'a [NodeId] {
            &p.footprint
        }

        fn gain(&self, _p: &AndProposal) -> i64 {
            1
        }

        fn commit(&self, mig: &mut Mig, p: AndProposal) -> CommitVerdict {
            // Live recheck: the pattern must still be present.
            let Some(inner) = redundant_and(mig, p.root) else {
                return CommitVerdict::Conflicted;
            };
            if mig.replace_node(p.root, inner) {
                CommitVerdict::Applied { replacements: 1 }
            } else {
                CommitVerdict::Rejected
            }
        }
    }

    /// A ladder of redundant conjunctions: every other gate repeats the
    /// conjunction below it and collapses under the toy engine. Inputs
    /// are cycled so exhaustive simulation stays feasible.
    fn redundant_ladder(pairs: usize) -> Mig {
        let mut m = Mig::new(8);
        let mut acc = m.input(0);
        for i in 0..pairs {
            let x = m.input(1 + i % 7);
            let inner = m.and(acc, x);
            acc = m.and(inner, x); // redundant: equals `inner`
        }
        m.add_output(acc);
        m
    }

    #[test]
    fn rounds_collapse_all_redundancy_deterministically() {
        let m = redundant_ladder(60);
        let want = m.output_truth_tables();
        let mut results = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut opt = m.clone();
            let cfg = ShardConfig {
                min_region_size: 4,
                ..ShardConfig::new(threads)
            };
            let stats = run_shard_rounds(&mut opt, &RedundantAndEngine, &cfg);
            assert!(stats.replacements > 0, "@{threads}: nothing rewritten");
            assert_eq!(opt.output_truth_tables(), want, "@{threads}");
            // Quiescence: no redundant pair survives.
            for g in opt.gates() {
                assert!(
                    redundant_and(&opt, g).is_none(),
                    "@{threads}: gate {g} still redundant"
                );
            }
            opt.debug_check();
            let gates: Vec<_> = opt.gates().map(|g| (g, opt.fanins(g))).collect();
            results.push((threads, opt.num_gates(), gates, opt.outputs().to_vec()));
        }
        // Determinism: repeat runs per thread count are bit-identical.
        for &(threads, gates, ref fanins, ref outs) in &results {
            let mut again = m.clone();
            let cfg = ShardConfig {
                min_region_size: 4,
                ..ShardConfig::new(threads)
            };
            run_shard_rounds(&mut again, &RedundantAndEngine, &cfg);
            assert_eq!(again.num_gates(), gates, "@{threads}");
            let fp: Vec<_> = again.gates().map(|g| (g, again.fanins(g))).collect();
            assert_eq!(&fp, fanins, "@{threads}: nondeterministic netlist");
            assert_eq!(&again.outputs().to_vec(), outs, "@{threads}");
        }
    }

    #[test]
    fn guarded_rounds_roll_back_when_the_metric_fails() {
        // A guard that always reports "worse" must leave the graph
        // untouched (round rolled back) while still counting the round.
        let m = redundant_ladder(40);
        let mut opt = m.clone();
        let cfg = ShardConfig {
            min_region_size: 4,
            guard: Some(|_m: &Mig| (0, 0)),
            ..ShardConfig::new(2)
        };
        let before: Vec<_> = opt.gates().map(|g| (g, opt.fanins(g))).collect();
        let stats = run_shard_rounds(&mut opt, &RedundantAndEngine, &cfg);
        assert_eq!(stats.replacements, 0, "rolled-back round must not count");
        let after: Vec<_> = opt.gates().map(|g| (g, opt.fanins(g))).collect();
        assert_eq!(before, after, "rollback restored the graph");
        assert_eq!(stats.rounds, 1);
    }
}
