//! Event-driven propose/commit convergence: the scheduler that lets any
//! local-rewriting engine converge with work proportional to what
//! actually changed, instead of re-traversing the whole graph per round.
//!
//! The protocol was born in the functional-hashing crate (parallel cut
//! replacement) but nothing in it is specific to cuts: a *proposal* is an
//! opaque engine payload plus a **footprint** (the step-start nodes its
//! analysis depends on), an expected **gain**, and a **legality recheck**
//! performed at commit time against the live graph. Engines plug in
//! through [`ProposeEngine`]; the [`Scheduler`] owns everything else:
//!
//! 1. **Partition.** [`ProposeEngine::partition`] carves the live gates
//!    into regions (the engine picks the strategy — FFR forest, level
//!    bands, …). Unlike the original round loop, the partition is
//!    **persistent**: it is rebuilt only when the live gate count drifts
//!    or enough dirty nodes fall outside every region (both thresholds in
//!    [`ShardConfig::repartition_pct`]), or for engines whose analysis is
//!    global ([`ProposeEngine::volatile_partition`]).
//! 2. **Schedule.** A deterministic priority queue of dirty regions —
//!    seeded from each commit's footprint and the graph's non-draining
//!    dirty-log cursor ([`crate::Mig::dirty_since`]), ordered by expected
//!    gain then stable region id — decides what gets proposed. After the
//!    first step, only queued (dirty) regions are re-proposed; clean
//!    regions are skipped entirely.
//! 3. **Propose.** Worker threads (`std::thread::scope`, work-stealing
//!    over the scheduled region list) call [`ProposeEngine::propose`]
//!    read-only on a frozen graph; results land in per-region slots so
//!    commit order is independent of scheduling.
//! 4. **Commit in waves, concurrently.** Proposals are grouped into
//!    *waves* of pairwise-disjoint TFO-extended footprints (footprint
//!    plus its fanout frontier), planned with an epoch-stamped scratch.
//!    Within a wave, every proposal's commit runs **concurrently**
//!    against a write-isolated overlay simulator ([`crate::wave`]) over
//!    the re-frozen wave-start graph: each worker owns its proposal's
//!    extended footprint plus a pre-reserved slot arena, and the
//!    surviving patches are installed by parallel disjoint-region
//!    writers, then reconciled (structural-hash edits, cross-region
//!    reference edits, dirty log) serially in proposal order. A commit
//!    whose cascade provably leaves its owned region *escapes* and
//!    re-runs serially on the real graph after the wave — correctness
//!    never depends on the overlay. Proposals of later waves whose
//!    footprint intersects anything dirtied earlier in the step are
//!    refused and their regions retry next step.
//!    [`ProposeEngine::commit`] still re-checks its own legality against
//!    the live network view either way.
//!
//! Steps repeat until the queue drains (no dirty region and no dirty
//! node outside the partition); engines whose steps are not individually
//! monotone set a [`ShardConfig::guard`] metric — such steps run against
//! a snapshot and are rolled back (ending the loop) when the metric
//! fails to improve, the same guarantee the serial convergence loops
//! provided.
//!
//! For a fixed input graph, engine and thread count the resulting
//! netlist is bit-deterministic: the queue order, the wave plan, the
//! commit order, the per-proposal arenas and the patch reconciliation
//! order never depend on worker scheduling — threads only decide *who*
//! computes each pure simulation and *who* writes each disjoint region.

use crate::fxhash::FxHashSet;
use crate::wave::{self, WavePatch};
use crate::{CompactMap, Mig, NetworkOps, NodeId, RegionPartition, Signal};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What [`ProposeEngine::commit`] did with one proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitVerdict {
    /// The proposal was applied with this many individual substitutions.
    Applied {
        /// Substitutions performed (a region-level proposal may reroute
        /// several boundary gates; a single-cut proposal performs one).
        replacements: u64,
    },
    /// The live-graph legality recheck failed (the graph drifted in a
    /// way the footprint could not see); the owning region retries next
    /// step.
    Conflicted,
    /// The proposal turned out to be a no-op (e.g. a substitution that
    /// would close a cycle through shared logic, retracted on the spot).
    /// Retrying would refuse again, so this is *not* a conflict.
    Rejected,
}

/// A rewriting engine pluggable into [`run_scheduler`].
///
/// The engine analyzes regions read-only ([`ProposeEngine::propose`] runs
/// concurrently on a frozen `&Mig`) and applies its proposals through
/// the [`NetworkOps`] surface ([`ProposeEngine::commit`], which must
/// re-check legality itself — the driver only guarantees that the
/// proposal's footprint is structurally untouched within the current
/// step). During a commit wave the driver hands workers write-isolated
/// simulators instead of the real graph, so commits of one wave run
/// concurrently.
pub trait ProposeEngine: Sync {
    /// One proposed local rewrite (opaque to the driver; shared across
    /// wave workers during the concurrent commit phase).
    type Proposal: Send + Sync;
    /// Read state shared by all workers while a partition is live (e.g.
    /// an FFR view of the graph). Use `()` when none is needed.
    type RoundState: Sync;

    /// Partitions the live gates into regions and prepares the shared
    /// read state. Called on the first step and whenever the scheduler's
    /// re-partition policy fires (live-gate drift or region staleness
    /// past [`ShardConfig::repartition_pct`]) — *not* every step, so the
    /// state may lag the graph by up to that threshold. Engines that
    /// cannot tolerate any lag return `true` from
    /// [`ProposeEngine::volatile_partition`].
    fn partition(&self, mig: &Mig, max_regions: usize) -> (RegionPartition, Self::RoundState);

    /// Whether the partition (and round state) must be rebuilt before
    /// every step. For engines whose proposal analysis is global — e.g.
    /// whole-region extraction, which must see a coherent member list —
    /// rather than local pattern matching that a stale region assignment
    /// merely makes less precise.
    fn volatile_partition(&self) -> bool {
        false
    }

    /// Invalidation hook, called after each step with the nodes the
    /// step's commits structurally changed. Engines carrying analysis
    /// caches across steps (cut lists, …) stale them here.
    fn invalidate(&self, _mig: &Mig, _changed: &[NodeId]) {}

    /// Renumbering hook, called after the driver compacts the graph
    /// ([`crate::Mig::compact`]): every node id may have changed, so
    /// engines carrying *node-indexed* caches must remap or drop them
    /// here. The driver re-partitions unconditionally afterwards, so
    /// partition-derived round state needs no migration.
    fn remap(&self, _map: &CompactMap) {}

    /// Generates the proposals of one region, read-only. A worker's own
    /// proposals should not overlap (the driver would refuse the later
    /// one as a conflict).
    fn propose(
        &self,
        mig: &Mig,
        partition: &RegionPartition,
        state: &Self::RoundState,
        region: u32,
    ) -> Vec<Self::Proposal>;

    /// The step-start nodes this proposal's analysis depends on. The
    /// commit phase refuses the proposal if any of them was structurally
    /// touched earlier in the step.
    fn footprint<'a>(&self, proposal: &'a Self::Proposal) -> &'a [NodeId];

    /// The proposal's expected gain (accumulated into [`ShardStats`] and
    /// used as the retry priority of its region).
    fn gain(&self, proposal: &Self::Proposal) -> i64;

    /// Re-checks the proposal against the live network view and applies
    /// it. `net` is the real graph on the serial paths and a
    /// write-isolated wave simulator during concurrent wave commits —
    /// identical semantics, so engines never need to know which.
    fn commit(&self, net: &mut dyn NetworkOps, proposal: &Self::Proposal) -> CommitVerdict;

    /// Upper estimate of the fresh gate slots this proposal's commit may
    /// allocate (structural transients included). The driver reserves an
    /// arena of this size (plus a safety margin) per proposal before
    /// simulating a wave; underestimating is safe — the simulation
    /// escapes to the serial fallback on arena overflow — but forfeits
    /// that proposal's wave parallelism.
    fn alloc_hint(&self, _proposal: &Self::Proposal) -> usize {
        8
    }

    /// Hook for steps whose partition degenerates to a single region.
    /// Engines whose single-region proposal would merely reproduce their
    /// serial pass (with perturbed tie-breaking) can run the serial pass
    /// directly here and return `Some((replacements, gain))`; the
    /// default `None` runs the regular propose/commit machinery.
    fn whole_graph_round(&self, _mig: &mut Mig) -> Option<(u64, i64)> {
        None
    }
}

/// A serial engine stage pluggable into [`run_scheduled_converge`]:
/// mutates the graph and reports `(replacements, gain)`.
pub type SerialPass<'a> = dyn FnMut(&mut Mig) -> (u64, i64) + 'a;

/// A step-acceptance metric: a lexicographic pair (smaller is better)
/// evaluated on the whole graph, e.g. `(gates, depth)` for a size
/// script or `(depth, gates)` for a depth script.
pub type RoundMetric = fn(&Mig) -> (u64, u64);

/// The default baseline guard when an engine sets no
/// [`ShardConfig::guard`]: plain gate count.
fn gates_only_metric(mig: &Mig) -> (u64, u64) {
    (mig.num_gates() as u64, 0)
}

/// Tuning of the event-driven scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Worker threads for the propose phase.
    pub threads: usize,
    /// Regions per worker thread: over-partitioning smooths load
    /// imbalance between shards of unequal rewriting opportunity.
    pub regions_per_thread: usize,
    /// Minimum gates per region: small graphs are not fragmented below
    /// this (a sliver region sees too little context, and per-region
    /// overhead would dominate).
    pub min_region_size: usize,
    /// Backstop on scheduler steps. Committing steps improve the graph,
    /// so this is never the expected exit.
    pub max_rounds: usize,
    /// Optional per-step acceptance metric (lexicographic, smaller is
    /// better). When set, every step runs against a snapshot and is
    /// rolled back — ending the loop — if the metric fails to improve.
    /// Engines whose commits are individually improving leave this
    /// `None` and skip the snapshot cost.
    pub guard: Option<RoundMetric>,
    /// Re-partition threshold, in percent of the gate count at partition
    /// time: the partition is rebuilt when the live gate count drifts by
    /// more than this, or when more than this fraction of pending dirty
    /// nodes falls outside every region (nodes created after the
    /// partition). Until then the scheduler reuses the partition, so a
    /// step costs only the dirty regions.
    pub repartition_pct: u32,
    /// Compaction threshold, in percent of slots on the free list: after
    /// a step ends with the dead-slot density past this, the driver
    /// renumbers the graph ([`crate::Mig::compact`]), remaps its pending
    /// frontier, hands engines the remap ([`ProposeEngine::remap`]) and
    /// forces a re-partition — so long-churning runs keep their slot
    /// arrays dense instead of chasing ever-sparser cache lines. `0`
    /// disables scheduler-driven compaction.
    pub compact_pct: u32,
}

impl ShardConfig {
    /// Default tuning for `threads` workers (4 regions per thread,
    /// 12-gate region floor, 64-step backstop, no guard, 20% drift
    /// threshold, 25% dead-slot compaction threshold). The floor keeps
    /// a region wide enough for a full
    /// 4-feasible cut cone plus fanout context while letting graphs in
    /// the tens of gates still split into a handful of shards — small
    /// benchmarks keep exercising (and tracing) the parallel propose
    /// phase instead of degenerating to the whole-graph hook.
    pub fn new(threads: usize) -> Self {
        ShardConfig {
            threads: threads.max(1),
            regions_per_thread: 4,
            min_region_size: 12,
            max_rounds: 64,
            guard: None,
            repartition_pct: 20,
            compact_pct: 25,
        }
    }

    /// The region bound for the current graph: follows the live gate
    /// count, so shrinking graphs coalesce toward the single-region
    /// degenerate case (equal to the serial engine).
    pub fn max_regions(&self, mig: &Mig) -> usize {
        (self.threads * self.regions_per_thread)
            .min(mig.num_gates() / self.min_region_size)
            .max(1)
    }

    /// Whether `mig` is large enough for region scheduling to beat a
    /// serial pass. Callers should fall back to their serial engine when
    /// this is false.
    pub fn shardable(&self, mig: &Mig) -> bool {
        (self.threads * self.regions_per_thread).min(mig.num_gates() / self.min_region_size) > 1
    }
}

/// What happened to one step's proposals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Proposals applied (a region proposal counts once even when it
    /// performs several substitutions).
    pub committed: usize,
    /// Proposals refused — by the driver's footprint check or the
    /// engine's live recheck (their regions retry next step).
    pub conflicted: usize,
    /// Individual substitutions performed.
    pub replacements: u64,
    /// Sum of expected gains of the committed proposals.
    pub gain: i64,
    /// Commit waves the step's proposals were grouped into (pairwise
    /// disjoint TFO-extended footprints per wave).
    pub waves: usize,
}

/// Event counters of the [`Scheduler`], reported by the `migopt`
/// per-pass notes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Scheduler steps run (batches of scheduled regions).
    pub steps: u64,
    /// Regions handed to [`ProposeEngine::propose`].
    pub proposed_regions: u64,
    /// Regions that stayed clean after the first step and were never
    /// re-proposed — the work a full-sweep round loop would have spent.
    /// Measured against the partition-time region count, so a region
    /// whose members have all died since still counts as skipped until
    /// the next re-partition.
    pub skipped_clean: u64,
    /// Proposals refused for retry (footprint conflict or engine
    /// recheck); their regions were re-queued.
    pub retried: u64,
    /// Commit waves applied (disjoint batches within steps).
    pub commit_waves: u64,
    /// Times the partition was (re)built.
    pub repartitions: u64,
}

impl SchedStats {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: SchedStats) {
        self.steps += other.steps;
        self.proposed_regions += other.proposed_regions;
        self.skipped_clean += other.skipped_clean;
        self.retried += other.retried;
        self.commit_waves += other.commit_waves;
        self.repartitions += other.repartitions;
    }

    /// Whether any scheduler activity was recorded (serial fallbacks
    /// record none).
    pub fn any(&self) -> bool {
        *self != SchedStats::default()
    }

    /// Reconstructs the counters from a metric-registry delta — the
    /// registry is the source of truth, this struct is the report view.
    pub fn from_delta(d: &obs::Delta) -> Self {
        SchedStats {
            steps: d.get(obs::Metric::SchedSteps),
            proposed_regions: d.get(obs::Metric::SchedProposedRegions),
            skipped_clean: d.get(obs::Metric::SchedSkippedClean),
            retried: d.get(obs::Metric::SchedRetried),
            commit_waves: d.get(obs::Metric::SchedCommitWaves),
            repartitions: d.get(obs::Metric::SchedRepartitions),
        }
    }
}

/// Accumulated statistics of a [`run_scheduler`] call.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Scheduler steps run (including a final empty or rolled-back
    /// step).
    pub rounds: usize,
    /// Total proposals committed.
    pub committed: u64,
    /// Total proposals refused for retry.
    pub conflicted: u64,
    /// Total individual substitutions.
    pub replacements: u64,
    /// Total expected gain of committed proposals.
    pub gain: i64,
    /// Scheduler event counters.
    pub sched: SchedStats,
}

impl ShardStats {
    /// Accumulates another run's statistics into this one.
    pub fn absorb(&mut self, other: ShardStats) {
        self.rounds += other.rounds;
        self.committed += other.committed;
        self.conflicted += other.conflicted;
        self.replacements += other.replacements;
        self.gain += other.gain;
        self.sched.absorb(other.sched);
    }

    /// Reconstructs the scheduler-attributed statistics from a
    /// metric-registry delta. Counters a whole-graph serial hook records
    /// under its own engine metrics (`fhash.*` / `alg.*`) are *not*
    /// folded in here; engine-level reports sum both families.
    pub fn from_delta(d: &obs::Delta) -> Self {
        ShardStats {
            rounds: d.get(obs::Metric::SchedSteps) as usize,
            committed: d.get(obs::Metric::ShardCommitted),
            conflicted: d.get(obs::Metric::ShardConflicted),
            replacements: d.get(obs::Metric::ShardReplacements),
            gain: d.geti(obs::Metric::ShardGain),
            sched: SchedStats::from_delta(d),
        }
    }
}

/// The event-driven convergence core: the deterministic priority queue
/// of dirty nodes (mapped onto regions of the current partition each
/// step), the re-partition bookkeeping and the commit-wave scratch.
///
/// Owned by [`run_scheduler`]; exposed for documentation of the
/// scheduling state, not for external construction.
pub struct Scheduler {
    /// Pending dirt at node granularity: `(node, priority)` where the
    /// priority is the expected gain of the commit or retry that dirtied
    /// the node. Node-level (not region-level) so the queue survives
    /// re-partitions unchanged.
    frontier: Vec<(NodeId, i64)>,
    /// Live gate count when the current partition was computed, the
    /// baseline of the drift threshold.
    gates_at_partition: usize,
    /// Epoch-stamped scratch for wave planning and escape detection.
    waves: WaveScratch,
}

impl Scheduler {
    fn new() -> Self {
        Scheduler {
            frontier: Vec::new(),
            gates_at_partition: 0,
            waves: WaveScratch::default(),
        }
    }

    /// Maps the pending frontier onto the current partition: per-region
    /// priority (maximum expected gain of the region's pending events,
    /// accumulation order independent) plus the count of live dirty
    /// nodes outside every region — created on appended slots or
    /// recycled into freed member slots after the partition (the
    /// staleness signal). Dead nodes drop out entirely.
    fn queue(&self, mig: &Mig, partition: &RegionPartition) -> (BTreeMap<u32, i64>, usize) {
        let mut queue: BTreeMap<u32, i64> = BTreeMap::new();
        let mut unassigned = 0usize;
        for &(n, prio) in &self.frontier {
            match partition.region_of_live(mig, n) {
                Some(r) => {
                    let e = queue.entry(r).or_insert(i64::MIN);
                    *e = (*e).max(prio);
                }
                None if mig.is_gate(n) => unassigned += 1,
                None => {}
            }
        }
        (queue, unassigned)
    }

    /// Whether the partition must be rebuilt: live-gate drift or
    /// unassigned-dirt staleness past the configured threshold.
    fn needs_repartition(&self, mig: &Mig, cfg: &ShardConfig, unassigned: usize) -> bool {
        let base = self.gates_at_partition.max(1);
        let drift = mig.num_gates().abs_diff(self.gates_at_partition);
        drift * 100 > base * cfg.repartition_pct as usize
            || unassigned * 100 > base * cfg.repartition_pct as usize
    }
}

/// Runs event-driven propose/commit steps to quiescence (no dirty region
/// left, a guarded step fails to improve, or `cfg.max_rounds` is hit).
///
/// Sweeps dangling cones up front (regions are analyzed in isolation;
/// dangling logic would pollute membership, boundary sets and gain
/// estimates) and again before returning. The graph's dirty log is
/// *peeked* through cursors, never drained, so carried analyses outside
/// the scheduler (a pipeline's cut set) keep their invalidation feed.
pub fn run_scheduler<E: ProposeEngine>(mig: &mut Mig, engine: &E, cfg: &ShardConfig) -> ShardStats {
    let (_, delta) = obs::metrics::scoped(|| run_scheduler_steps(mig, engine, cfg));
    delta.publish();
    ShardStats::from_delta(&delta)
}

/// The scheduler loop proper. Every counter goes to the metric registry
/// ([`run_scheduler`] reconstructs the [`ShardStats`] report from its
/// scope delta); each step runs inside a nested metric scope so a guard
/// rollback drops the undone step's outcome counters while
/// [`obs::Delta::publish_history`] keeps its event history — uniformly
/// for every engine.
fn run_scheduler_steps<E: ProposeEngine>(mig: &mut Mig, engine: &E, cfg: &ShardConfig) {
    use obs::metrics::{add, addi};
    use obs::Metric;
    mig.sweep();
    let mut sched = Scheduler::new();
    let mut current: Option<(RegionPartition, E::RoundState)> = None;
    let mut first = true;
    let mut force_partition = false;
    let mut rounds = 0usize;
    while rounds < cfg.max_rounds {
        let _step_span = obs::trace::span_dyn(|| format!("sched:step{rounds}"));
        // (Re-)partition when there is none, the engine demands a fresh
        // one, the previous step asked for one, or drift/staleness
        // crossed the threshold.
        let mut need_partition =
            current.is_none() || engine.volatile_partition() || force_partition;
        force_partition = false;
        let mut queue: BTreeMap<u32, i64> = BTreeMap::new();
        if !need_partition {
            let (partition, _) = current.as_ref().expect("checked above");
            let (q, unassigned) = sched.queue(mig, partition);
            if sched.needs_repartition(mig, cfg, unassigned) || (q.is_empty() && unassigned > 0) {
                need_partition = true;
            } else {
                queue = q;
            }
        }
        if need_partition {
            let _span = obs::trace::span("sched:partition");
            let _timer = obs::metrics::timer(Metric::SchedRepartitionNs);
            current = Some(engine.partition(mig, cfg.max_regions(mig)));
            sched.gates_at_partition = mig.num_gates();
            add(Metric::SchedRepartitions, 1);
            if !first {
                // Remap the pending frontier onto the fresh partition
                // (dead slots simply drop out of the queue).
                queue = sched
                    .queue(mig, &current.as_ref().expect("just partitioned").0)
                    .0;
            }
        }
        let (partition, state) = current.as_ref().expect("partition ensured");
        let nonempty = partition.num_nonempty_regions();
        // Scheduled regions: everything on the first step, afterwards
        // only the dirty regions, ordered by priority (expected gain
        // descending) then stable region id descending — topmost shards
        // first among equal priorities, mirroring the serial top-down
        // traversals.
        let active: Vec<u32> = if first {
            (0..partition.num_regions() as u32)
                .filter(|&r| !partition.members(r).is_empty())
                .rev()
                .collect()
        } else {
            let mut regions: Vec<(i64, u32)> = queue.into_iter().map(|(r, p)| (p, r)).collect();
            regions.sort_unstable_by_key(|&(p, r)| std::cmp::Reverse((p, r)));
            regions.into_iter().map(|(_, r)| r).collect()
        };
        if active.is_empty() {
            break;
        }
        // Consume the frontier for this step — but keep live dirty nodes
        // the partition cannot place (created on appended slots, or
        // recycled into freed member slots, after it was computed): they
        // stay queued, and keep exerting staleness pressure, until a
        // re-partition assigns them a region. Dead slots drop out.
        sched
            .frontier
            .retain(|&(n, _)| mig.is_gate(n) && partition.region_of_live(mig, n).is_none());
        if !first {
            add(
                Metric::SchedSkippedClean,
                nonempty.saturating_sub(active.len()) as u64,
            );
        }
        first = false;
        add(Metric::SchedProposedRegions, active.len() as u64);
        let before_metric = cfg.guard.map(|metric| metric(mig));
        let snapshot = before_metric.is_some().then(|| mig.clone());
        let mut changed: Vec<NodeId> = Vec::new();
        let whole_graph = partition.num_regions() <= 1;
        // The step body runs in its own metric scope: a rolled-back
        // step's engine-recorded outcome counters must vanish with the
        // undone work, while its event history survives.
        let ((outcome, hooked), step_delta) = obs::metrics::scoped(|| {
            let hook = if whole_graph {
                let cursor = mig.dirty_cursor();
                engine.whole_graph_round(mig).map(|(replacements, gain)| {
                    // The hook bypasses the commit path; seed the next
                    // step's frontier from the dirty log directly.
                    for &n in mig.dirty_since(cursor).unwrap_or(&[]) {
                        changed.push(n);
                        sched.frontier.push((n, gain));
                    }
                    RoundOutcome {
                        committed: usize::from(replacements > 0),
                        replacements,
                        gain,
                        ..RoundOutcome::default()
                    }
                })
            } else {
                None
            };
            match hook {
                Some(outcome) => (outcome, true),
                None => (
                    propose_and_commit(
                        mig,
                        engine,
                        partition,
                        state,
                        &active,
                        cfg,
                        &mut sched,
                        &mut changed,
                    ),
                    false,
                ),
            }
        });
        rounds += 1;
        add(Metric::SchedSteps, 1);
        // Conflicts and waves are event history: they happened even when
        // the step commits nothing (a pure-retry step) or is rolled
        // back, so they are counted unconditionally.
        add(Metric::ShardConflicted, outcome.conflicted as u64);
        add(Metric::SchedRetried, outcome.conflicted as u64);
        add(Metric::SchedCommitWaves, outcome.waves as u64);
        if outcome.committed == 0 {
            step_delta.publish();
            if outcome.conflicted > 0 && rounds < cfg.max_rounds {
                // Everything this step proposed was refused; the stale
                // regions were re-queued against a partition that may no
                // longer describe the graph. Re-partition before the
                // retry so the loop cannot ping-pong on stale views.
                force_partition = true;
                continue;
            }
            break;
        }
        if let (Some(metric), Some(before)) = (cfg.guard, before_metric) {
            if metric(mig) >= before {
                // The step failed to improve (gains are estimates;
                // structural hashing and refused substitutions shift the
                // real counts): roll back, like the serial convergence
                // loops do. The step's outcome counters roll back with
                // it; its event history does not.
                if let Some(snap) = snapshot {
                    *mig = snap;
                }
                step_delta.publish_history();
                break;
            }
        }
        step_delta.publish();
        if !hooked {
            // A whole-graph serial hook records its rewrites under its
            // own engine metrics inside the step scope; counting them
            // here as well would double-report.
            add(Metric::ShardCommitted, outcome.committed as u64);
            add(Metric::ShardReplacements, outcome.replacements);
            addi(Metric::ShardGain, outcome.gain);
        }
        if !changed.is_empty() {
            engine.invalidate(mig, &changed);
        }
        // Between steps the graph is quiescent: when enough slots have
        // died, renumber them out ([`Mig::compact`]) so the remaining
        // steps (and every later pass) walk dense arrays. Deterministic:
        // the trigger is a pure function of the graph state.
        if cfg.compact_pct > 0 && mig.dead_slot_pct() >= u64::from(cfg.compact_pct) {
            let _span = obs::trace::span("sched:compact");
            let map = mig.compact();
            if !map.is_identity() {
                add(Metric::SchedCompactions, 1);
                // Carry the pending frontier across the renumbering
                // (dead slots drop out), hand engines the remap for
                // their node-indexed caches, and force a fresh
                // partition — region assignments are node-indexed too.
                sched.frontier = sched
                    .frontier
                    .iter()
                    .filter_map(|&(n, p)| map.remap(n).map(|m| (m, p)))
                    .collect();
                engine.remap(&map);
                force_partition = true;
            }
        }
    }
    mig.sweep();
}

/// One step's propose phase (parallel, read-only, per-region result
/// slots) followed by its wave-batched commit phase.
#[allow(clippy::too_many_arguments)]
fn propose_and_commit<E: ProposeEngine>(
    mig: &mut Mig,
    engine: &E,
    partition: &RegionPartition,
    state: &E::RoundState,
    active: &[u32],
    cfg: &ShardConfig,
    sched: &mut Scheduler,
    changed: &mut Vec<NodeId>,
) -> RoundOutcome {
    // Workers steal region indices off a shared counter; results land in
    // per-region slots so the commit order is independent of scheduling.
    let slots: Vec<Mutex<Vec<E::Proposal>>> =
        active.iter().map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    let frozen: &Mig = mig;
    let workers = cfg.threads.max(1).min(active.len());
    // Workers sync on a start barrier: load imbalance then shows up as
    // idle span tails instead of thread-start skew, and the per-worker
    // spans of one phase genuinely coexist even on one hardware thread.
    let barrier = std::sync::Barrier::new(workers);
    {
        let _propose_span = obs::trace::span("propose");
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _worker_span = obs::trace::span("propose:worker");
                    barrier.wait();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= active.len() {
                            break;
                        }
                        let _region_span =
                            obs::trace::span_dyn(|| format!("propose:r{}", active[i]));
                        let props = engine.propose(frozen, partition, state, active[i]);
                        *slots[i].lock().unwrap() = props;
                    }
                });
            }
        });
    }
    let proposals: Vec<E::Proposal> = slots
        .into_iter()
        .flat_map(|m| m.into_inner().unwrap())
        .collect();
    let _commit_span = obs::trace::span("commit");
    // The scheduler's next step is driven by the frontier alone; no
    // stale set is materialized on this path.
    commit_waves(
        mig,
        engine,
        proposals,
        None,
        Some(&mut sched.frontier),
        &mut sched.waves,
        changed,
        cfg.threads,
    )
}

/// Applies one step's proposals grouped into waves of pairwise-disjoint
/// TFO-extended footprints. `stale` receives the nodes whose regions
/// must be re-proposed next step: everything dirtied by a commit, plus
/// the footprints of conflicted proposals. Exposed so engines can
/// regression-test their commit behavior against hand-built proposals.
pub fn commit_proposals<E: ProposeEngine>(
    mig: &mut Mig,
    engine: &E,
    proposals: Vec<E::Proposal>,
    stale: &mut HashSet<NodeId>,
) -> RoundOutcome {
    let mut scratch = WaveScratch::default();
    let mut changed = Vec::new();
    commit_waves(
        mig,
        engine,
        proposals,
        Some(stale),
        None,
        &mut scratch,
        &mut changed,
        1,
    )
}

/// Epoch-stamped per-node scratch shared by wave planning (which wave
/// stamped a node's extended footprint) and the wave stamps handed to
/// the overlay simulators (does a node belong to *some* proposal of the
/// executing wave). Epochs advance per use, so the vectors are allocated
/// once and never cleared.
///
/// Thread discipline: every mutation (epoch advance, restamp, growth)
/// happens on the scheduling thread *between* waves; while wave workers
/// run, the simulators hold only shared borrows of `own`, so reusing
/// the scratch across waves and steps is race-free by construction.
#[derive(Default)]
struct WaveScratch {
    /// Wave planning: `plan[n] >= plan_base` means node `n` belongs to
    /// the extended footprint of a proposal in wave `plan[n] - plan_base`.
    plan: Vec<u32>,
    plan_base: u32,
    /// Wave stamps: `own[n] == own_epoch` marks `n` as inside the
    /// executing wave's union of owned regions (extended footprints plus
    /// reserved arenas). A simulator that reaches a stamped node it does
    /// not own escapes — another worker may be rewriting it.
    own: Vec<u32>,
    own_epoch: u32,
}

impl WaveScratch {
    fn ensure(&mut self, n: usize) {
        if self.plan.len() < n {
            self.plan.resize(n, 0);
            self.own.resize(n, 0);
        }
    }
}

/// The TFO-extended footprint of one proposal: the footprint nodes plus
/// their immediate fanout gates. Commits mutate within this frontier in
/// the overwhelmingly common case (the replaced cone, its rewired
/// parents); cascades that escape it are caught exactly by the dirty-log
/// cursor during commit.
fn extended_footprint(mig: &Mig, footprint: &[NodeId]) -> Vec<NodeId> {
    let mut ext = footprint.to_vec();
    for &n in footprint {
        if (n as usize) < mig.num_nodes() && !mig.is_dead(n) {
            ext.extend(mig.fanout_gates(n));
        }
    }
    ext.sort_unstable();
    ext.dedup();
    ext
}

/// Greedy deterministic wave assignment: proposal `i` lands in the first
/// wave whose already-stamped extended footprints it does not intersect
/// (one pass, prefix maxima over the stamp scratch).
fn plan_waves(extended: &[Vec<NodeId>], scratch: &mut WaveScratch) -> Vec<u32> {
    let max_node = extended
        .iter()
        .flat_map(|e| e.iter())
        .map(|&n| n as usize + 1)
        .max()
        .unwrap_or(0);
    scratch.ensure(max_node);
    // Advance the epoch window; reset on overflow so stale stamps can
    // never alias a current wave.
    if scratch.plan_base > u32::MAX - (extended.len() as u32 + 2) {
        scratch.plan.fill(0);
        scratch.plan_base = 0;
    }
    scratch.plan_base += 1;
    let base = scratch.plan_base;
    let mut waves = Vec::with_capacity(extended.len());
    let mut max_wave = 0u32;
    for ext in extended {
        let mut wave = 0u32;
        for &n in ext {
            let s = scratch.plan[n as usize];
            if s >= base {
                wave = wave.max(s - base + 1);
            }
        }
        for &n in ext {
            scratch.plan[n as usize] = base + wave;
        }
        max_wave = max_wave.max(wave);
        waves.push(wave);
    }
    // Leave the window past every stamp written this call.
    scratch.plan_base += max_wave + 1;
    waves
}

/// Records a refused proposal's footprint for retry.
fn note_refused(
    stale: &mut Option<&mut HashSet<NodeId>>,
    frontier: &mut Option<&mut Vec<(NodeId, i64)>>,
    footprint: &[NodeId],
    gain: i64,
) {
    if let Some(stale) = stale.as_deref_mut() {
        stale.extend(footprint.iter().copied());
    }
    if let Some(front) = frontier.as_deref_mut() {
        front.extend(footprint.iter().map(|&n| (n, gain)));
    }
}

/// Feeds one commit's dirt into the step-conflict set, the stale set,
/// the invalidation list and the retry frontier.
fn note_dirt(
    step_dirty: &mut FxHashSet<NodeId>,
    stale: &mut Option<&mut HashSet<NodeId>>,
    frontier: &mut Option<&mut Vec<(NodeId, i64)>>,
    changed: &mut Vec<NodeId>,
    dirt: &[NodeId],
    gain: i64,
) {
    for &n in dirt {
        step_dirty.insert(n);
        if let Some(stale) = stale.as_deref_mut() {
            stale.insert(n);
        }
        changed.push(n);
        if let Some(front) = frontier.as_deref_mut() {
            front.push((n, gain));
        }
    }
}

/// The wave-batched commit phase (see the module docs). Per wave:
///
/// 1. refuse proposals whose footprint intersects dirt accumulated
///    earlier in the step (their regions retry next step);
/// 2. stamp the wave's owned regions and reserve per-proposal slot
///    arenas, in proposal order;
/// 3. run every commit **concurrently** against a write-isolated
///    [`crate::wave::WaveSim`] over the re-frozen wave-start graph;
/// 4. accept patches serially in proposal order — an escaped simulation
///    or a fresh-strash-key collision between two patches demotes the
///    later proposal to the serial fallback;
/// 5. install the accepted patches with parallel disjoint-region
///    writers, then reconcile and finalize them serially in proposal
///    order (strash, boundary references, outputs, dirty log, freed
///    slots, deferred kills, level ripples);
/// 6. re-run the fallback proposals serially on the real graph.
///
/// Every stage is a pure function of (wave-start graph, proposal
/// order), so the resulting netlist is bit-identical for every thread
/// count.
#[allow(clippy::too_many_arguments)]
fn commit_waves<E: ProposeEngine>(
    mig: &mut Mig,
    engine: &E,
    proposals: Vec<E::Proposal>,
    mut stale: Option<&mut HashSet<NodeId>>,
    mut frontier: Option<&mut Vec<(NodeId, i64)>>,
    scratch: &mut WaveScratch,
    changed: &mut Vec<NodeId>,
    threads: usize,
) -> RoundOutcome {
    let mut outcome = RoundOutcome::default();
    if proposals.is_empty() {
        return outcome;
    }
    let extended: Vec<Vec<NodeId>> = proposals
        .iter()
        .map(|p| extended_footprint(mig, engine.footprint(p)))
        .collect();
    let waves = plan_waves(&extended, scratch);
    let num_waves = waves.iter().max().copied().unwrap_or(0) as usize + 1;
    outcome.waves = num_waves;
    let mut by_wave: Vec<Vec<usize>> = vec![Vec::new(); num_waves];
    for (i, &w) in waves.iter().enumerate() {
        by_wave[w as usize].push(i);
    }
    // Nodes touched earlier in this step; a proposal whose footprint
    // intersects it was analyzed against a graph that no longer exists.
    let mut step_dirty: FxHashSet<NodeId> = FxHashSet::default();
    for (w, members) in by_wave.iter().enumerate() {
        let _wave_span = obs::trace::span_dyn(|| format!("commit:wave{w}"));
        // Driver conflict scan (vacuous for wave 0 of a fresh step).
        let mut runnable: Vec<usize> = Vec::with_capacity(members.len());
        for &i in members {
            let fp = engine.footprint(&proposals[i]);
            if fp.iter().any(|n| step_dirty.contains(n)) {
                outcome.conflicted += 1;
                note_refused(&mut stale, &mut frontier, fp, engine.gain(&proposals[i]));
            } else {
                runnable.push(i);
            }
        }
        obs::metrics::observe(obs::Metric::SchedWaveWidth, runnable.len() as u64);
        if runnable.is_empty() {
            continue;
        }
        // Wave stamps: mark the union of all runnable regions, so each
        // simulator can tell its own region from a sibling's.
        scratch.own_epoch = scratch.own_epoch.wrapping_add(1);
        if scratch.own_epoch == 0 {
            scratch.own.fill(0);
            scratch.own_epoch = 1;
        }
        let epoch = scratch.own_epoch;
        // Per-proposal slot arenas, reserved in proposal order so slot
        // assignment is deterministic; the margin over the engine's own
        // estimate absorbs normalization transients.
        let arenas: Vec<Vec<NodeId>> = runnable
            .iter()
            .map(|&i| wave::reserve_slots(mig, engine.alloc_hint(&proposals[i]) + 8))
            .collect();
        scratch.ensure(mig.num_nodes());
        let owned: Vec<FxHashSet<NodeId>> = runnable
            .iter()
            .zip(&arenas)
            .map(|(&i, arena)| extended[i].iter().chain(arena.iter()).copied().collect())
            .collect();
        for set in &owned {
            for &n in set {
                scratch.own[n as usize] = epoch;
            }
        }
        // Concurrent simulation: workers steal proposal indices and run
        // the engine's commit against private overlays of the frozen
        // wave-start graph; results land in per-proposal slots so
        // nothing downstream depends on scheduling. Each simulation runs
        // in its own metric scope — its recordings are published only if
        // its patch is accepted (a fallback re-run records afresh).
        type SimResult = (CommitVerdict, WavePatch, obs::Delta);
        let slots: Vec<Mutex<Option<SimResult>>> =
            runnable.iter().map(|_| Mutex::new(None)).collect();
        {
            let _sim_span = obs::trace::span("commit:sim");
            let frozen: &Mig = mig;
            let stamps: &[u32] = &scratch.own;
            let next = AtomicUsize::new(0);
            let workers = threads.max(1).min(runnable.len());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= runnable.len() {
                            break;
                        }
                        let prop = &proposals[runnable[k]];
                        let ((verdict, patch), delta) = obs::metrics::scoped(|| {
                            let mut sim =
                                wave::WaveSim::new(frozen, stamps, epoch, &owned[k], &arenas[k]);
                            let v = engine.commit(&mut sim, prop);
                            (v, sim.finish())
                        });
                        *slots[k].lock().unwrap() = Some((verdict, patch, delta));
                    });
                }
            });
        }
        let results: Vec<SimResult> = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every simulation ran"))
            .collect();
        // Acceptance scan, proposal order: escapes and fresh-key strash
        // collisions (two proposals building the same new gate — the
        // serial engine would have merged them) fall back.
        let mut new_keys: FxHashSet<[Signal; 3]> = FxHashSet::default();
        let mut accepted: Vec<usize> = Vec::new();
        let mut is_accepted = vec![false; runnable.len()];
        let mut fallback: Vec<usize> = Vec::new();
        for (k, (_, patch, _)) in results.iter().enumerate() {
            let collides = patch
                .strash_add
                .iter()
                .any(|(key, _)| new_keys.contains(key));
            if patch.escaped || collides {
                fallback.push(k);
            } else {
                new_keys.extend(patch.strash_add.iter().map(|&(key, _)| key));
                accepted.push(k);
                is_accepted[k] = true;
            }
        }
        // Parallel apply: disjoint-region writers install every accepted
        // patch's final node states.
        let patch_refs: Vec<&WavePatch> = accepted.iter().map(|&k| &results[k].1).collect();
        if !patch_refs.is_empty() {
            wave::apply_patches(mig, &patch_refs, threads, w as u32);
        }
        // Serial reconciliation in proposal order: strash edits,
        // boundary reference edits, outputs, dirty log, back-pointers.
        let _reconcile_span = obs::trace::span("commit:reconcile");
        for &k in &accepted {
            let (verdict, patch, delta) = &results[k];
            let gain = engine.gain(&proposals[runnable[k]]);
            let cursor = mig.dirty_cursor();
            wave::reconcile_patch(mig, patch);
            match *verdict {
                CommitVerdict::Applied { replacements } => {
                    outcome.committed += 1;
                    outcome.replacements += replacements;
                    outcome.gain += gain;
                }
                CommitVerdict::Conflicted => {
                    outcome.conflicted += 1;
                    note_refused(
                        &mut stale,
                        &mut frontier,
                        engine.footprint(&proposals[runnable[k]]),
                        gain,
                    );
                }
                CommitVerdict::Rejected => {}
            }
            delta.publish();
            let dirt = mig
                .dirty_since(cursor)
                .expect("nothing drains inside a commit step")
                .to_vec();
            note_dirt(
                &mut step_dirty,
                &mut stale,
                &mut frontier,
                changed,
                &dirt,
                gain,
            );
        }
        // Finalization after *all* reconciliations (deferred cross-patch
        // kills need the fully reconciled reference counts): freed-slot
        // recycling, foreign kills, level ripples past patch borders.
        drop(_reconcile_span);
        let _finalize_span = obs::trace::span("commit:finalize");
        for &k in &accepted {
            let gain = engine.gain(&proposals[runnable[k]]);
            let cursor = mig.dirty_cursor();
            wave::finalize_patch(mig, &results[k].1);
            let dirt = mig
                .dirty_since(cursor)
                .expect("nothing drains inside a commit step")
                .to_vec();
            note_dirt(
                &mut step_dirty,
                &mut stale,
                &mut frontier,
                changed,
                &dirt,
                gain,
            );
        }
        // Return unconsumed arena slots, newest reservation first, so
        // the free list (and any trailing array growth) is restored for
        // everything the wave never materialized.
        for k in (0..runnable.len()).rev() {
            let used = if is_accepted[k] {
                results[k].1.arena_used
            } else {
                0
            };
            wave::return_slots(mig, &arenas[k][used..]);
        }
        // Serial fallback: escaped or demoted proposals re-run on the
        // real graph — the historical serial commit path, now only for
        // the provably-unsafe remainder.
        obs::metrics::add(obs::Metric::SchedWaveFallbacks, fallback.len() as u64);
        for &k in &fallback {
            let prop = &proposals[runnable[k]];
            let gain = engine.gain(prop);
            if engine
                .footprint(prop)
                .iter()
                .any(|n| step_dirty.contains(n))
            {
                outcome.conflicted += 1;
                note_refused(&mut stale, &mut frontier, engine.footprint(prop), gain);
                continue;
            }
            let cursor = mig.dirty_cursor();
            let (verdict, delta) = obs::metrics::scoped(|| engine.commit(&mut *mig, prop));
            delta.publish();
            match verdict {
                CommitVerdict::Applied { replacements } => {
                    outcome.committed += 1;
                    outcome.replacements += replacements;
                    outcome.gain += gain;
                }
                CommitVerdict::Conflicted => {
                    outcome.conflicted += 1;
                    note_refused(&mut stale, &mut frontier, engine.footprint(prop), gain);
                }
                CommitVerdict::Rejected => {}
            }
            let dirt = mig
                .dirty_since(cursor)
                .expect("nothing drains inside a commit step")
                .to_vec();
            note_dirt(
                &mut step_dirty,
                &mut stale,
                &mut frontier,
                changed,
                &dirt,
                gain,
            );
        }
        #[cfg(debug_assertions)]
        mig.debug_check();
    }
    outcome
}

/// The shared convergence skeleton for engines that pair the scheduler
/// with a serial engine (every converge driver in the workspace):
///
/// * graphs too small to shard run `serial` alone (the degenerate case,
///   bit-identical to a single-threaded run);
/// * an optional `baseline` pass runs first under the configured guard
///   metric and is rolled back unless it improves — the quality floor
///   for engines whose serial analysis is global (the bottom-up
///   candidate DP) and cannot be reproduced regionally;
/// * the scheduler then runs to quiescence;
/// * with `polish`, `serial` runs once more afterwards, recovering moves
///   that span region boundaries from the (much smaller) quiescent
///   graph.
///
/// `serial` and `baseline` report `(replacements, gain)`; their numbers
/// are merged into the returned [`ShardStats`].
pub fn run_scheduled_converge<E: ProposeEngine>(
    mig: &mut Mig,
    engine: &E,
    cfg: &ShardConfig,
    serial: &mut SerialPass<'_>,
    baseline: Option<&mut SerialPass<'_>>,
    polish: bool,
) -> ShardStats {
    // Serial stages report `(replacements, gain)` pairs that engines
    // already record under their own metrics; they are folded into the
    // returned struct only (not re-recorded) to avoid double counting.
    let mut serial_repl = 0u64;
    let mut serial_gain = 0i64;
    let (_, delta) = obs::metrics::scoped(|| {
        if !cfg.shardable(mig) {
            let _span = obs::trace::span("serial");
            let (replacements, gain) = serial(mig);
            serial_repl += replacements;
            serial_gain += gain;
            return;
        }
        if let Some(baseline) = baseline {
            let _span = obs::trace::span("baseline");
            let metric = cfg.guard.unwrap_or(gates_only_metric);
            let before = metric(mig);
            let snapshot = mig.clone();
            let ((replacements, gain), base_delta) = obs::metrics::scoped(|| baseline(mig));
            if replacements > 0 && metric(mig) >= before {
                *mig = snapshot;
                base_delta.publish_history();
            } else {
                base_delta.publish();
                serial_repl += replacements;
                serial_gain += gain;
            }
        }
        run_scheduler(mig, engine, cfg);
        if polish {
            let _span = obs::trace::span("polish");
            let (replacements, gain) = serial(mig);
            serial_repl += replacements;
            serial_gain += gain;
            mig.sweep();
        }
    });
    delta.publish();
    let mut stats = ShardStats::from_delta(&delta);
    stats.replacements += serial_repl;
    stats.gain += serial_gain;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionStrategy, Signal};

    /// A toy engine removing redundant conjunction: `<0 a <0 a b>>`
    /// computes the same function as its inner gate, so the root can be
    /// substituted by the inner signal (gain 1).
    struct RedundantAndEngine;

    struct AndProposal {
        root: NodeId,
        footprint: Vec<NodeId>,
    }

    /// Matches the pattern at `root` and returns the replacement signal
    /// (over the [`NetworkOps`] view, so it also rechecks inside wave
    /// simulations).
    fn redundant_and(net: &dyn NetworkOps, root: NodeId) -> Option<Signal> {
        if !net.is_gate(root) {
            return None;
        }
        let ops = net.fanins(root);
        if ops[0] != Signal::ZERO {
            return None;
        }
        for (i, &inner) in ops.iter().enumerate().skip(1) {
            if inner.is_complemented() || !net.is_gate(inner.node()) {
                continue;
            }
            let other = ops[3 - i];
            let inner_ops = net.fanins(inner.node());
            if inner_ops[0] == Signal::ZERO && inner_ops.contains(&other) {
                return Some(inner);
            }
        }
        None
    }

    impl ProposeEngine for RedundantAndEngine {
        type Proposal = AndProposal;
        type RoundState = ();

        fn partition(&self, mig: &Mig, max_regions: usize) -> (RegionPartition, ()) {
            let p = RegionPartition::compute(mig, PartitionStrategy::LevelBands { max_regions });
            (p, ())
        }

        fn propose(
            &self,
            mig: &Mig,
            partition: &RegionPartition,
            _state: &(),
            region: u32,
        ) -> Vec<AndProposal> {
            let mut props = Vec::new();
            let mut claimed: HashSet<NodeId> = HashSet::new();
            for &v in partition.members(region).iter().rev() {
                if claimed.contains(&v) {
                    continue;
                }
                if let Some(inner) = redundant_and(mig, v) {
                    let footprint = vec![v, inner.node()];
                    claimed.extend(footprint.iter().copied());
                    props.push(AndProposal { root: v, footprint });
                }
            }
            props
        }

        fn footprint<'a>(&self, p: &'a AndProposal) -> &'a [NodeId] {
            &p.footprint
        }

        fn gain(&self, _p: &AndProposal) -> i64 {
            1
        }

        fn commit(&self, net: &mut dyn NetworkOps, p: &AndProposal) -> CommitVerdict {
            // Live recheck: the pattern must still be present.
            let Some(inner) = redundant_and(&*net, p.root) else {
                return CommitVerdict::Conflicted;
            };
            if net.replace_node(p.root, inner) {
                CommitVerdict::Applied { replacements: 1 }
            } else {
                CommitVerdict::Rejected
            }
        }
    }

    /// A ladder of redundant conjunctions: every other gate repeats the
    /// conjunction below it and collapses under the toy engine. Inputs
    /// are cycled so exhaustive simulation stays feasible.
    fn redundant_ladder(pairs: usize) -> Mig {
        let mut m = Mig::new(8);
        let mut acc = m.input(0);
        for i in 0..pairs {
            let x = m.input(1 + i % 7);
            let inner = m.and(acc, x);
            acc = m.and(inner, x); // redundant: equals `inner`
        }
        m.add_output(acc);
        m
    }

    fn small_cfg(threads: usize) -> ShardConfig {
        ShardConfig {
            min_region_size: 4,
            ..ShardConfig::new(threads)
        }
    }

    #[test]
    fn scheduler_collapses_all_redundancy_deterministically() {
        let m = redundant_ladder(60);
        let want = m.output_truth_tables();
        let mut results = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut opt = m.clone();
            let stats = run_scheduler(&mut opt, &RedundantAndEngine, &small_cfg(threads));
            assert!(stats.replacements > 0, "@{threads}: nothing rewritten");
            assert_eq!(opt.output_truth_tables(), want, "@{threads}");
            // Quiescence: no redundant pair survives.
            for g in opt.gates() {
                assert!(
                    redundant_and(&opt, g).is_none(),
                    "@{threads}: gate {g} still redundant"
                );
            }
            opt.debug_check();
            let gates: Vec<_> = opt.gates().map(|g| (g, opt.fanins(g))).collect();
            results.push((threads, opt.num_gates(), gates, opt.outputs().to_vec()));
        }
        // Determinism: repeat runs per thread count are bit-identical.
        for &(threads, gates, ref fanins, ref outs) in &results {
            let mut again = m.clone();
            run_scheduler(&mut again, &RedundantAndEngine, &small_cfg(threads));
            assert_eq!(again.num_gates(), gates, "@{threads}");
            let fp: Vec<_> = again.gates().map(|g| (g, again.fanins(g))).collect();
            assert_eq!(&fp, fanins, "@{threads}: nondeterministic netlist");
            assert_eq!(&again.outputs().to_vec(), outs, "@{threads}");
        }
    }

    #[test]
    fn scheduler_skips_clean_regions() {
        // Redundancy concentrated at the bottom of the graph, with a tall
        // irredundant majority chain on top: after the first full step
        // only the dirtied bottom regions (and their fanout frontier) are
        // ever re-proposed — the clean chain bands are skipped, which a
        // full-sweep round loop could not do.
        let mut m = Mig::new(8);
        let mut acc = m.input(0);
        for i in 0..12 {
            let x = m.input(1 + i % 7);
            let inner = m.and(acc, x);
            acc = m.and(inner, x);
        }
        for i in 0..120 {
            let x = m.input(1 + i % 7);
            let y = m.input(1 + (i + 3) % 7);
            acc = m.maj(acc, x, !y);
        }
        m.add_output(acc);
        let want = m.output_truth_tables();
        let mut opt = m.clone();
        let stats = run_scheduler(&mut opt, &RedundantAndEngine, &small_cfg(2));
        assert!(stats.replacements > 0);
        assert_eq!(opt.output_truth_tables(), want);
        assert!(
            stats.sched.skipped_clean > 0,
            "clean regions were re-proposed: {:?}",
            stats.sched
        );
        assert!(stats.sched.proposed_regions > 0);
        assert!(stats.sched.commit_waves >= 1);
    }

    #[test]
    fn guarded_steps_roll_back_when_the_metric_fails() {
        // A guard that always reports "worse" must leave the graph
        // untouched (step rolled back) while still counting the step.
        let m = redundant_ladder(40);
        let mut opt = m.clone();
        let cfg = ShardConfig {
            guard: Some(|_m: &Mig| (0, 0)),
            ..small_cfg(2)
        };
        let before: Vec<_> = opt.gates().map(|g| (g, opt.fanins(g))).collect();
        let stats = run_scheduler(&mut opt, &RedundantAndEngine, &cfg);
        assert_eq!(stats.replacements, 0, "rolled-back step must not count");
        let after: Vec<_> = opt.gates().map(|g| (g, opt.fanins(g))).collect();
        assert_eq!(before, after, "rollback restored the graph");
        assert_eq!(stats.rounds, 1);
    }

    /// Builds the toy proposal at `root` over the current graph.
    fn and_proposal(mig: &Mig, root: NodeId) -> AndProposal {
        let inner = redundant_and(mig, root).expect("pattern present");
        AndProposal {
            root,
            footprint: vec![root, inner.node()],
        }
    }

    #[test]
    fn disjoint_proposals_commit_in_one_wave_bit_identical_to_serial() {
        // Two redundant pairs in unrelated cones: batched application in
        // one wave must produce the exact netlist serial one-at-a-time
        // application produces, with both proposals committed.
        let build = || {
            let mut m = Mig::new(8);
            let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
            let i1 = m.and(a, b);
            let r1 = m.and(i1, b); // redundant pair 1
            let u1 = m.maj(r1, a, !b); // separate fanout frontiers: no
            let i2 = m.and(c, d); //     shared parent between the cones
            let r2 = m.and(i2, d); // redundant pair 2
            let u2 = m.maj(r2, c, !d);
            m.add_output(u1);
            m.add_output(u2);
            (m, r1.node(), r2.node())
        };
        let (mut batched, r1, r2) = build();
        let p1 = and_proposal(&batched, r1);
        let p2 = and_proposal(&batched, r2);
        let mut stale = HashSet::new();
        let outcome = commit_proposals(&mut batched, &RedundantAndEngine, vec![p1, p2], &mut stale);
        assert_eq!(outcome.waves, 1, "disjoint footprints share one wave");
        assert_eq!(outcome.committed, 2);
        assert_eq!(outcome.conflicted, 0);
        batched.debug_check();

        let (mut serial, r1, r2) = build();
        for root in [r1, r2] {
            let p = and_proposal(&serial, root);
            let mut stale = HashSet::new();
            let o = commit_proposals(&mut serial, &RedundantAndEngine, vec![p], &mut stale);
            assert_eq!(o.committed, 1);
        }
        let fp_b: Vec<_> = batched.gates().map(|g| (g, batched.fanins(g))).collect();
        let fp_s: Vec<_> = serial.gates().map(|g| (g, serial.fanins(g))).collect();
        assert_eq!(fp_b, fp_s, "batched wave diverged from serial commits");
        assert_eq!(batched.outputs(), serial.outputs());
        assert_eq!(batched.num_nodes(), serial.num_nodes());
    }

    #[test]
    fn overlapping_proposals_degrade_to_the_conflict_retry_path() {
        // Two stacked redundant pairs: committing the lower one rewires
        // the upper one's footprint, so the upper proposal must be
        // refused (conflict, queued for retry), not applied against the
        // drifted graph — and the wave plan must have separated them.
        let mut m = Mig::new(4);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let i1 = m.and(a, b);
        let r1 = m.and(i1, b); // lower redundant pair
        let i2 = m.and(r1, c);
        let r2 = m.and(i2, c); // upper redundant pair, feeds on r1
        m.add_output(r2);
        let want = m.output_truth_tables();
        let p_low = and_proposal(&m, r1.node());
        let p_high = and_proposal(&m, r2.node());
        assert!(
            extended_footprint(&m, &p_low.footprint)
                .iter()
                .any(|n| p_high.footprint.contains(n)),
            "test premise: the extended footprints overlap"
        );
        let mut stale = HashSet::new();
        let outcome =
            commit_proposals(&mut m, &RedundantAndEngine, vec![p_low, p_high], &mut stale);
        assert!(outcome.waves >= 2, "overlap forces a second wave");
        assert_eq!(outcome.committed, 1, "lower proposal lands");
        assert_eq!(outcome.conflicted, 1, "upper proposal refused for retry");
        assert!(
            !stale.is_empty(),
            "conflicted footprint queued for the next step"
        );
        assert_eq!(m.output_truth_tables(), want, "function preserved");
        m.debug_check();
    }

    /// A commit whose cascade provably leaves its TFO-extended footprint
    /// must escape its wave simulation and land through the serial
    /// fallback — applied, not dropped, and bit-identical to a direct
    /// serial `replace_node` on the same graph.
    #[test]
    fn escaped_cascade_falls_back_to_serial_application() {
        struct CollapseEngine;
        struct CollapseProposal {
            root: NodeId,
            repl: Signal,
            footprint: Vec<NodeId>,
        }
        impl ProposeEngine for CollapseEngine {
            type Proposal = CollapseProposal;
            type RoundState = ();
            fn partition(&self, mig: &Mig, max_regions: usize) -> (RegionPartition, ()) {
                let p =
                    RegionPartition::compute(mig, PartitionStrategy::LevelBands { max_regions });
                (p, ())
            }
            fn propose(
                &self,
                _mig: &Mig,
                _partition: &RegionPartition,
                _state: &(),
                _region: u32,
            ) -> Vec<CollapseProposal> {
                Vec::new()
            }
            fn footprint<'a>(&self, p: &'a CollapseProposal) -> &'a [NodeId] {
                &p.footprint
            }
            fn gain(&self, _p: &CollapseProposal) -> i64 {
                1
            }
            fn commit(&self, net: &mut dyn NetworkOps, p: &CollapseProposal) -> CommitVerdict {
                if net.replace_node(p.root, p.repl) {
                    CommitVerdict::Applied { replacements: 1 }
                } else {
                    CommitVerdict::Rejected
                }
            }
        }

        // The wave.rs escape construction: replacing `root` by `a`
        // collapses `mid` (<a a !b> = a), which substitutes into `outer`
        // — two fanout hops from the footprint, outside the extension.
        let build = || {
            let mut m = Mig::new(4);
            let (a, b, c) = (m.input(0), m.input(1), m.input(2));
            let inner = m.and(a, b);
            let root = m.and(inner, b);
            let mid = m.maj(root, a, !b);
            let outer = m.maj(mid, c, a);
            m.add_output(outer);
            (m, root.node(), inner.node(), a)
        };
        let (mut m, root, inner, a) = build();
        let prop = CollapseProposal {
            root,
            repl: a,
            footprint: vec![root, inner],
        };
        let mut stale = HashSet::new();
        let ((), delta) = obs::metrics::scoped(|| {
            let outcome = commit_proposals(&mut m, &CollapseEngine, vec![prop], &mut stale);
            assert_eq!(outcome.committed, 1, "escaped proposal still lands");
            assert_eq!(outcome.conflicted, 0);
        });
        assert!(
            delta.get(obs::Metric::SchedWaveFallbacks) >= 1,
            "the cascade must have gone through the serial fallback"
        );
        m.debug_check();

        let (mut serial, root, _, a) = build();
        assert!(serial.replace_node(root, a));
        let fp = |m: &Mig| {
            (
                m.num_nodes(),
                m.gates().map(|g| (g, m.fanins(g))).collect::<Vec<_>>(),
                m.outputs().to_vec(),
            )
        };
        assert_eq!(
            fp(&m),
            fp(&serial),
            "fallback diverged from serial semantics"
        );
    }

    #[test]
    fn wave_planning_is_greedy_and_deterministic() {
        let ext = vec![
            vec![1, 2, 3],
            vec![4, 5],
            vec![3, 6],    // clashes with #0 -> wave 1
            vec![7],       // free -> wave 0
            vec![6, 5],    // clashes with #1 (wave 0) and #2 (wave 1) -> wave 2
            vec![1, 4, 7], // clashes with wave-0 members -> wave 1
        ];
        let mut scratch = WaveScratch::default();
        assert_eq!(plan_waves(&ext, &mut scratch), vec![0, 0, 1, 0, 2, 1]);
        // The scratch is reusable without clearing (epoch window).
        assert_eq!(plan_waves(&ext, &mut scratch), vec![0, 0, 1, 0, 2, 1]);
    }
}
