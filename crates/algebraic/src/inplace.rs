//! In-place algebraic rewriting: the same Ω.A/Ω.D moves as the rebuild
//! reference engines, but executed as local substitutions on the managed
//! [`Mig`] network.
//!
//! Every move is a *local candidate*: a read-only pattern match over one
//! gate, its fanins and — for depth moves — its grandchildren, followed
//! by a speculative construction of the replacement cone and a commit
//! through [`Mig::replace_node`]. The sweeps reproduce the rebuild
//! reference's *decisions*:
//!
//! * size sweeps match the live structure in topological order (the
//!   rebuild size pass decides on the graph under construction, which
//!   the managed network *is*);
//! * depth sweeps run in *reverse* topological order, so every match
//!   sees the untouched sweep-start state of its cone (the rebuild
//!   engine's old-graph criticality analysis) with the incrementally
//!   maintained levels standing in for the old level map, while
//!   `replace_node`'s automatic fanout rewiring compounds the moves
//!   upward.
//!
//! What changes is the *cost*: unchanged logic is never touched (no
//! reconstruction, structural hashing simply finds the existing nodes),
//! a committed move costs O(affected region) through `replace_node`, and
//! the convergence loops re-scan only *affected cones* — the
//! structural-change log (read without draining it, so a pipeline's
//! carried cut set keeps its invalidation feed) seeds the set of gates
//! whose transitive fanout could have gained a new move, and a final
//! full sweep confirms the fixpoint.
//!
//! Safety is layered on top of liberal, rebuild-parity moves: every
//! public sweep runs guarded — size sweeps roll back when they end
//! `(gates, depth)`-worse, depth sweeps when they end
//! `(depth, gates)`-worse — so the passes are never worse than their
//! input no matter what the individual moves did.

use crate::{script_metric, AlgStats};
use mig::{Mig, NetworkOps, NodeId, Signal};
use std::collections::HashSet;

/// A matched Ω.D right-to-left merge: `<G1 G2 z>` with `G1 = <x y u>`,
/// `G2 = <x y v>` (plain polarity, sharing exactly the two operands
/// `shared`), rewritten to `<x y <u v z>>`.
pub(crate) struct SizeMove {
    pub g1: NodeId,
    pub g2: NodeId,
    pub shared: [Signal; 2],
    pub u: Signal,
    pub v: Signal,
    pub z: Signal,
}

/// Scans gate `g` for a size merge. Read-only; mirrors the rebuild
/// engine's pattern and operand-pair scan order so both engines pick the
/// same move. Like the rebuild reference, the match is *liberal*: it
/// fires even when the merged pair is shared (the net profit of such
/// merges comes from structural-hash sharing across the whole sweep, not
/// from the single site), so the never-worse guarantee lives at the
/// sweep level ([`size_rewrite_in_place`] rolls back a sweep that ends
/// lexicographically worse).
pub(crate) fn match_size_move(mig: &dyn NetworkOps, g: NodeId) -> Option<SizeMove> {
    let ops = mig.fanins(g);
    for i in 0..3 {
        for j in 0..3 {
            if i == j {
                continue;
            }
            let (s1, s2) = (ops[i], ops[j]);
            let z = ops[3 - i - j];
            if s1.is_complemented() || s2.is_complemented() {
                continue;
            }
            if !mig.is_gate(s1.node()) || !mig.is_gate(s2.node()) {
                continue;
            }
            let f1 = mig.fanins(s1.node());
            let f2 = mig.fanins(s2.node());
            let shared: Vec<Signal> = f1.iter().copied().filter(|s| f2.contains(s)).collect();
            if shared.len() == 2 {
                let u = *f1
                    .iter()
                    .find(|s| !shared.contains(s))
                    .expect("third operand");
                let v = *f2
                    .iter()
                    .find(|s| !shared.contains(s))
                    .expect("third operand");
                return Some(SizeMove {
                    g1: s1.node(),
                    g2: s2.node(),
                    shared: [shared[0], shared[1]],
                    u,
                    v,
                    z,
                });
            }
        }
    }
    None
}

/// Re-derives and applies the size merge at `g` against the live graph.
/// Returns `false` when no merge applies (the pattern vanished or the
/// substitution was refused); nothing is changed in that case.
pub(crate) fn apply_size_move(mig: &mut Mig, g: NodeId) -> bool {
    let Some(mv) = match_size_move(&*mig, g) else {
        return false;
    };
    commit_size_move(mig, g, mv)
}

/// Builds the merged cone of a matched size move and commits it via
/// [`Mig::replace_node`]. Returns `false` when the substitution was
/// refused (the root reproduced itself, or a cycle through shared
/// logic) — nothing is changed in that case. A committed merge records
/// into the metric registry, the single source of truth the stats
/// structs are reconstructed from.
pub(crate) fn commit_size_move(mig: &mut dyn NetworkOps, g: NodeId, mv: SizeMove) -> bool {
    let inner = mig.maj(mv.u, mv.v, mv.z);
    let new = mig.maj(mv.shared[0], mv.shared[1], inner);
    if new.node() == g {
        // Structural hashing reproduced the root; nothing to merge (only
        // possible when `inner` aliased an existing referenced node, so
        // there is no speculative cone to retract).
        return false;
    }
    if mig.replace_node(g, new) {
        obs::metrics::add(obs::Metric::AlgMerges, 1);
        true
    } else {
        // Cycle through shared logic: retract the speculative cone.
        mig.reclaim(new.node());
        false
    }
}

/// A matched depth move at a gate whose unique deepest operand is a
/// plain inner gate with deepest own operand `z`. All signals are
/// already translated to the live graph.
pub(crate) enum DepthMove {
    /// Ω.A: `<x u <y u z>> = <z u <y u x>>` — swap the late-arriving `z`
    /// with the early outer operand `x` through the shared operand `u`.
    Assoc {
        x: Signal,
        y: Signal,
        u: Signal,
        z: Signal,
    },
    /// Ω.D left-to-right: `<x y <u v z>> = <<x y u> <x y v> z>` — pull
    /// `z` one level up at the cost of one node.
    Distrib {
        outer: [Signal; 2],
        rest: [Signal; 2],
        z: Signal,
    },
}

/// Selects the unique critical operand of a gate for a depth move: the
/// single deepest operand under `level`, a plain (uncomplemented) gate
/// per `is_gate`, at level >= 2. Returns its operand index. This is the
/// analysis-graph half of the rebuild engine's pattern match.
fn select_critical(
    ops: [Signal; 3],
    level: &dyn Fn(NodeId) -> u32,
    is_gate: &dyn Fn(NodeId) -> bool,
) -> Option<usize> {
    let lvls = ops.map(|s| level(s.node()));
    let maxl = *lvls.iter().max().expect("three operands");
    if maxl < 2 {
        return None;
    }
    let critical: Vec<usize> = (0..3).filter(|&i| lvls[i] == maxl).collect();
    if critical.len() != 1 {
        return None;
    }
    let ci = critical[0];
    let inner = ops[ci];
    if inner.is_complemented() || !is_gate(inner.node()) {
        return None;
    }
    Some(ci)
}

/// Plans the depth move over *live* operand signals: `outer` are the two
/// non-critical operands of the root, `inner_ops` the three operands of
/// the critical inner gate, `live_level` the levels of the graph being
/// mutated (the rebuild engine's levels of the graph under
/// construction). Mirrors the rebuild engine's conditions exactly.
fn plan_depth_move(
    outer: [Signal; 2],
    inner_ops: [Signal; 3],
    live_level: &dyn Fn(NodeId) -> u32,
) -> Option<DepthMove> {
    // The critical grandchild: deepest translated operand of the inner
    // gate.
    let zi = (0..3)
        .max_by_key(|&i| live_level(inner_ops[i].node()))
        .expect("three operands");
    let z = inner_ops[zi];
    let rest: Vec<Signal> = (0..3).filter(|&i| i != zi).map(|i| inner_ops[i]).collect();
    let z_lvl = live_level(z.node());
    // Ω.A: the inner gate shares an operand u with the outer gate; swap z
    // with the other outer operand x when that flattens the path.
    for (ui, &u) in outer.iter().enumerate() {
        if rest.contains(&u) {
            let x = outer[1 - ui];
            let y = *rest.iter().find(|&&s| s != u).unwrap_or(&rest[0]);
            if live_level(x.node()) + 1 < z_lvl {
                return Some(DepthMove::Assoc { x, y, u, z });
            }
            break;
        }
    }
    // Ω.D L→R: both outer operands and both non-critical inner operands
    // arrive early enough to absorb the extra level.
    let early = outer.iter().all(|&s| live_level(s.node()) + 1 < z_lvl)
        && rest.iter().all(|&s| live_level(s.node()) + 1 < z_lvl);
    if early {
        return Some(DepthMove::Distrib {
            outer,
            rest: [rest[0], rest[1]],
            z,
        });
    }
    None
}

/// The depth-move pattern match against the live graph only (analysis =
/// target): what the sharded engine's propose and commit phases use — a
/// frozen round snapshot *is* its own pass-start graph.
pub(crate) fn match_depth_move_live(
    mig: &dyn NetworkOps,
    g: NodeId,
) -> Option<(DepthMove, NodeId)> {
    let ops = mig.fanins(g);
    let ci = select_critical(ops, &|n| mig.level(n), &|n| mig.is_gate(n))?;
    let inner = ops[ci].node();
    let outer: Vec<Signal> = (0..3).filter(|&i| i != ci).map(|i| ops[i]).collect();
    let mv = plan_depth_move([outer[0], outer[1]], mig.fanins(inner), &|n| mig.level(n))?;
    Some((mv, inner))
}

/// Builds the replacement cone of a depth move and commits it via
/// [`Mig::replace_node`]. Returns the committed replacement signal, or
/// `None` when the substitution was refused (the root reproduced itself,
/// the root's live level would degrade, or a cycle through shared
/// logic) — nothing is changed in that case.
pub(crate) fn commit_depth_move(
    mig: &mut dyn NetworkOps,
    g: NodeId,
    mv: DepthMove,
) -> Option<Signal> {
    let old_level = mig.level(g);
    let (new, is_assoc) = match mv {
        DepthMove::Assoc { x, y, u, z } => {
            let i2 = mig.maj(y, u, x);
            (mig.maj(z, u, i2), true)
        }
        DepthMove::Distrib { outer, rest, z } => {
            let g1 = mig.maj(outer[0], outer[1], rest[0]);
            let g2 = mig.maj(outer[0], outer[1], rest[1]);
            (mig.maj(g1, g2, z), false)
        }
    };
    if new.node() == g {
        return None;
    }
    if mig.level(new.node()) > old_level || !mig.replace_node(g, new) {
        // The root's level would degrade (tie-breaking collisions), or a
        // cycle through shared logic: retract the speculative cone.
        mig.reclaim(new.node());
        return None;
    }
    if is_assoc {
        obs::metrics::add(obs::Metric::AlgAssocMoves, 1);
    } else {
        obs::metrics::add(obs::Metric::AlgDistribMoves, 1);
    }
    Some(new)
}

/// The two move families of the algebraic flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Family {
    /// Ω.D right-to-left merges.
    Size,
    /// Ω.A / Ω.D left-to-right critical-path moves.
    Depth,
}

/// One sweep over the live gates (topological order), trying the
/// family's move on each. `targets` restricts the sweep to an
/// affected-cone set (`None` = every gate). Dangling roots are skipped
/// (they are reclaimed by the final sweep, not optimized).
fn sweep(mig: &mut Mig, targets: Option<&HashSet<NodeId>>, family: Family) {
    match family {
        Family::Size => size_sweep(mig, targets),
        Family::Depth => depth_sweep(mig, targets),
    }
}

fn size_sweep(mig: &mut Mig, targets: Option<&HashSet<NodeId>>) {
    let topo = mig.topo_gates();
    for v in topo {
        if !mig.is_gate(v) || mig.fanout_count(v) == 0 {
            continue;
        }
        if let Some(t) = targets {
            if !t.contains(&v) {
                continue;
            }
        }
        apply_size_move(mig, v);
    }
    mig.sweep();
}

/// The depth sweep: processes the live gates in *reverse* topological
/// order (outputs first). Visiting a gate before any of its fanin cone
/// means every pattern match runs against the untouched, sweep-start
/// state of that cone — the rebuild engine's old-graph analysis — while
/// [`Mig::replace_node`]'s automatic fanout rewiring compounds the
/// moves: when a deeper gate later moves too, the already-restructured
/// ancestors are rewired onto its replacement for free. A gate whose
/// cone was subsumed by an earlier (higher) move simply dies and is
/// skipped. This is what halves a ripple chain's depth per sweep,
/// exactly like one rebuild pass, at in-place cost.
fn depth_sweep(mig: &mut Mig, targets: Option<&HashSet<NodeId>>) {
    let topo = mig.topo_gates();
    for &v in topo.iter().rev() {
        if !mig.is_gate(v) || mig.fanout_count(v) == 0 {
            continue;
        }
        if let Some(t) = targets {
            if !t.contains(&v) {
                continue;
            }
        }
        let Some((mv, _inner)) = match_depth_move_live(mig, v) else {
            continue;
        };
        commit_depth_move(mig, v, mv);
    }
    mig.sweep();
}

/// The depth script's acceptance metric: `(depth, gates)`, compared
/// lexicographically — a depth sweep may spend gates for levels, but a
/// sweep that fails to pay for itself is rolled back.
pub(crate) fn depth_metric(mig: &Mig) -> (u64, u64) {
    (u64::from(mig.depth()), mig.num_gates() as u64)
}

/// Runs one guarded sweep: `metric` is evaluated before and after, and a
/// sweep that ends *strictly worse* is rolled back (equal is kept —
/// lateral restructuring feeds later passes, as in the rebuild script).
/// Returns the stats of the kept sweep (zero when rolled back).
fn guarded_sweep(mig: &mut Mig, family: Family, metric: fn(&Mig) -> (u64, u64)) -> AlgStats {
    let before = metric(mig);
    let snapshot = mig.clone();
    let ((), delta) = obs::metrics::scoped(|| sweep(mig, None, family));
    if metric(mig) > before {
        *mig = snapshot;
        // The undone moves' outcome counters vanish with the rollback;
        // event history (profiling totals) remains true work done.
        delta.publish_history();
        return AlgStats::default();
    }
    delta.publish();
    AlgStats::from_delta(&delta)
}

/// One in-place size-rewriting sweep (Ω.D right-to-left). Merges are
/// applied liberally (rebuild parity — the profit of merging shared
/// pairs comes from structural-hash sharing across the sweep), and the
/// whole sweep is rolled back if it ends `(gates, depth)`-worse, so the
/// result is never worse than the input. Functionality is preserved.
pub fn size_rewrite_in_place(mig: &mut Mig) -> AlgStats {
    guarded_sweep(mig, Family::Size, script_metric)
}

/// One in-place depth-rewriting sweep (Ω.A / Ω.D left-to-right on gates
/// with a unique critical operand): no committed move raises its root's
/// live level, and the sweep is rolled back if it ends
/// `(depth, gates)`-worse, so the result never has more depth than the
/// input (gates may grow — Ω.D trades one node for one level, as in the
/// paper's depth script).
pub fn depth_rewrite_in_place(mig: &mut Mig) -> AlgStats {
    guarded_sweep(mig, Family::Depth, depth_metric)
}

/// The gates whose move opportunities could have changed: the changed
/// nodes themselves plus their transitive fanout (level changes propagate
/// only upward, and a pattern reads at most two levels of fanin, which a
/// structural change covers through the fanout of the changed node).
fn affected_cone(mig: &Mig, dirty: &[NodeId]) -> HashSet<NodeId> {
    let mut set = HashSet::new();
    let mut stack: Vec<NodeId> = dirty.to_vec();
    while let Some(v) = stack.pop() {
        if !set.insert(v) {
            continue;
        }
        for p in mig.fanout_gates(v) {
            stack.push(p);
        }
    }
    set
}

/// Serial convergence driver shared by [`crate::size_converge`] and
/// [`crate::depth_converge`]: sweeps to a fixpoint, re-scanning only the
/// affected cones of the previous sweep's changes (seeded from the
/// structural-change log, which is *peeked*, not drained — a pipeline's
/// carried cut set keeps its invalidation feed). Incremental rounds that
/// find nothing are confirmed by one full sweep. A round that fails to
/// strictly improve `guard` is rolled back and ends the loop — the
/// never-worse guarantee, and what bounds lateral-move churn.
pub(crate) fn converge(
    mig: &mut Mig,
    max_rounds: usize,
    family: Family,
    guard: fn(&Mig) -> (u64, u64),
) -> (AlgStats, usize) {
    let mut rounds = 0;
    let mut targets: Option<HashSet<NodeId>> = None;
    let ((), delta) = obs::metrics::scoped(|| {
        while rounds < max_rounds {
            let before = guard(mig);
            let snapshot = mig.clone();
            let mark = mig.dirty_cursor();
            // Per-round scope: a kept round publishes everything, a
            // fruitless or rolled-back round keeps only event history.
            let ((), round) = obs::metrics::scoped(|| sweep(mig, targets.as_ref(), family));
            rounds += 1;
            let stats = AlgStats::from_delta(&round);
            if stats.total() == 0 {
                round.publish_history();
                if targets.is_none() {
                    break; // a full sweep found nothing: true fixpoint
                }
                targets = None; // confirm the incremental fixpoint fully
                continue;
            }
            if guard(mig) >= before {
                *mig = snapshot;
                round.publish_history();
                if targets.is_none() {
                    break;
                }
                // A targeted round went stale without paying off; confirm
                // the fixpoint with a full sweep before giving up.
                targets = None;
                continue;
            }
            round.publish();
            match mig.dirty_since(mark) {
                Some(dirty) => {
                    let dirty: Vec<NodeId> = dirty.to_vec();
                    targets = Some(affected_cone(mig, &dirty));
                }
                // The log was drained under us (cannot happen from inside
                // a sweep; defensive): fall back to a full re-scan.
                None => targets = None,
            }
        }
    });
    delta.publish();
    (AlgStats::from_delta(&delta), rounds)
}

/// One optimization-script round: size stage, depth stage, stage
/// selection and round acceptance — all by the shared lexicographic
/// `(gates, depth)` metric ([`script_metric`]), the same convergence
/// rule as the rebuild reference. A single implementation drives both
/// the serial and the sharded script so they cannot drift. Returns the
/// kept stats, or `None` when the round failed to improve and was
/// rolled back.
pub(crate) fn script_round(
    mig: &mut Mig,
    size_stage: &mut dyn FnMut(&mut Mig) -> AlgStats,
    depth_stage: &mut dyn FnMut(&mut Mig) -> AlgStats,
) -> Option<AlgStats> {
    let before = script_metric(mig);
    let snapshot = mig.clone();
    let (_, size_d) = obs::metrics::scoped(|| size_stage(mig));
    let mid_metric = script_metric(mig);
    let mid = mig.clone();
    let (_, depth_d) = obs::metrics::scoped(|| depth_stage(mig));
    // Stage selection mirrors the rebuild script: keep the depth stage
    // only when it is lexicographically no worse. Discarded stages and
    // rolled-back rounds keep only their event history in the registry.
    let mut round = size_d;
    if script_metric(mig) <= mid_metric {
        round.merge(&depth_d);
    } else {
        *mig = mid;
        depth_d.publish_history();
    }
    if script_metric(mig) >= before {
        *mig = snapshot;
        round.publish_history();
        return None;
    }
    round.publish();
    Some(AlgStats::from_delta(&round))
}

/// The in-place optimization script: alternating size and depth sweeps
/// under [`script_round`]'s acceptance. Rounds that fail to improve are
/// rolled back, making the result never worse than the input.
pub fn optimize_in_place(mig: &mut Mig, max_rounds: usize) -> AlgStats {
    let ((), delta) = obs::metrics::scoped(|| {
        for _ in 0..max_rounds {
            if script_round(mig, &mut size_rewrite_in_place, &mut depth_rewrite_in_place).is_none()
            {
                break;
            }
        }
    });
    delta.publish();
    AlgStats::from_delta(&delta)
}
