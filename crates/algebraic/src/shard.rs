//! Sharded algebraic rewriting: the Ω.A/Ω.D moves as proposals on the
//! engine-agnostic event-driven convergence scheduler
//! ([`mig::ProposeEngine`] / [`mig::run_scheduler`]).
//!
//! Workers scan their region's gates read-only for size merges or depth
//! moves over the frozen step snapshot; the wave-batched commit phase
//! *re-derives* each move against the live graph (the move matchers are
//! the legality recheck: operand identities and — for depth moves — the
//! non-degrading level bound are all evaluated on live state), so a
//! proposal whose neighborhood drifted is refused and its region
//! retried next step. Because the recheck is total, the engine tolerates
//! a partition that lags the graph by the scheduler's re-partition
//! threshold — dirty regions are re-proposed from the priority queue,
//! clean regions are never touched again.
//!
//! Guarantees, mirroring the serial engines:
//!
//! * **size** steps run under the `(gates, depth)` lexicographic guard
//!   (merges are liberal — their profit comes from cross-sweep strash
//!   sharing — so a step is kept only when it nets out smaller);
//! * **depth** steps run under a `(depth, gates)` lexicographic guard —
//!   committed moves can spend gates, and a step that fails to improve
//!   is rolled back, so sharded depth scripts are depth-monotone;
//! * results are bit-deterministic for a fixed input and thread count
//!   (scheduler property), and graphs too small to shard degenerate to
//!   the serial sweeps.
//!
//! The serial-fallback / polish structure is the shared
//! [`mig::run_scheduled_converge`] skeleton (the same one the
//! functional-hashing engines drive): after the scheduler reaches
//! quiescence a serial polish pass runs to its own fixpoint, recovering
//! moves that span region boundaries.

use crate::inplace::{
    commit_depth_move, commit_size_move, converge, depth_metric, match_depth_move_live,
    match_size_move, Family,
};
use crate::{script_metric, AlgStats};
use mig::{
    run_scheduled_converge, CommitVerdict, Mig, NetworkOps, NodeId, PartitionStrategy,
    ProposeEngine, RegionPartition, ShardConfig,
};
use std::collections::HashSet;

struct AlgEngine {
    family: Family,
}

/// The move kind a proposal was derived as. The commit phase refuses a
/// proposal whose live re-derivation lands on a *different* kind
/// (Conflicted — the region re-proposes from fresh analysis), so the
/// driver's per-kind gain attribution of kept steps is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MoveKind {
    Merge,
    Assoc,
    Distrib,
}

impl MoveKind {
    fn of_depth(mv: &crate::inplace::DepthMove) -> MoveKind {
        match mv {
            crate::inplace::DepthMove::Assoc { .. } => MoveKind::Assoc,
            crate::inplace::DepthMove::Distrib { .. } => MoveKind::Distrib,
        }
    }
}

struct AlgProposal {
    root: NodeId,
    kind: MoveKind,
    /// Step-start nodes the analysis depends on: the root and the
    /// involved fanin gate(s). Operand *levels* can drift without
    /// touching the footprint; the commit-side re-derivation catches
    /// that.
    footprint: Vec<NodeId>,
    /// Expected gate-count gain: 1 for a merge, 0 for Ω.A, -1 for Ω.D.
    gain: i64,
}

impl ProposeEngine for AlgEngine {
    type Proposal = AlgProposal;
    type RoundState = ();

    fn partition(&self, mig: &Mig, max_regions: usize) -> (RegionPartition, ()) {
        // Level bands: algebraic moves carry no fanout-free restriction,
        // and a band keeps a gate together with its fanins/grandchildren
        // more often than an FFR packing would. The partition persists
        // across steps (the commit-time re-derivation makes stale member
        // lists harmless — dead members are skipped, new nodes queue as
        // staleness toward the scheduler's re-partition threshold).
        let p = RegionPartition::compute(mig, PartitionStrategy::LevelBands { max_regions });
        (p, ())
    }

    fn propose(
        &self,
        mig: &Mig,
        partition: &RegionPartition,
        _state: &(),
        region: u32,
    ) -> Vec<AlgProposal> {
        let mut props = Vec::new();
        let mut claimed: HashSet<NodeId> = HashSet::new();
        // Topmost members first, matching the driver's descending commit
        // order across regions.
        for &v in partition.members(region).iter().rev() {
            if claimed.contains(&v) || !mig.is_gate(v) || mig.fanout_count(v) == 0 {
                continue;
            }
            let prop = match self.family {
                Family::Size => match_size_move(mig, v).map(|mv| AlgProposal {
                    root: v,
                    kind: MoveKind::Merge,
                    footprint: vec![v, mv.g1, mv.g2],
                    gain: 1,
                }),
                // The frozen step snapshot plays the role of the serial
                // sweep's level snapshot: propose against its levels.
                Family::Depth => match_depth_move_live(mig, v).map(|(mv, inner)| AlgProposal {
                    root: v,
                    kind: MoveKind::of_depth(&mv),
                    footprint: vec![v, inner],
                    gain: match mv {
                        crate::inplace::DepthMove::Assoc { .. } => 0,
                        crate::inplace::DepthMove::Distrib { .. } => -1,
                    },
                }),
            };
            if let Some(p) = prop {
                claimed.extend(p.footprint.iter().copied());
                props.push(p);
            }
        }
        props
    }

    fn footprint<'a>(&self, p: &'a AlgProposal) -> &'a [NodeId] {
        &p.footprint
    }

    fn gain(&self, p: &AlgProposal) -> i64 {
        p.gain
    }

    fn commit(&self, net: &mut dyn NetworkOps, p: &AlgProposal) -> CommitVerdict {
        if !net.is_gate(p.root) {
            return CommitVerdict::Conflicted;
        }
        // Re-derive against the live graph: a vanished pattern or a
        // kind flip means the neighborhood drifted (Conflicted — the
        // region retries from fresh analysis), while a refused
        // substitution (cycle through shared logic, reproduced root,
        // degraded level) would refuse again (Rejected). Committed moves
        // record their `alg.*` counters into the step's metric scope,
        // which the scheduler drops back to event history if the step's
        // guard rolls it back — rollback semantics are uniform with the
        // serial sweeps by construction.
        let applied = match self.family {
            Family::Size => {
                let Some(mv) = match_size_move(&*net, p.root) else {
                    return CommitVerdict::Conflicted;
                };
                commit_size_move(net, p.root, mv)
            }
            Family::Depth => {
                let Some((mv, _inner)) = match_depth_move_live(&*net, p.root) else {
                    return CommitVerdict::Conflicted;
                };
                if MoveKind::of_depth(&mv) != p.kind {
                    return CommitVerdict::Conflicted;
                }
                commit_depth_move(net, p.root, mv).is_some()
            }
        };
        if applied {
            CommitVerdict::Applied { replacements: 1 }
        } else {
            CommitVerdict::Rejected
        }
    }

    fn alloc_hint(&self, _p: &AlgProposal) -> usize {
        // Ω.D distribution builds three fresh gates; merges and Ω.A two.
        3
    }
}

/// [`crate::size_converge`] / [`crate::depth_converge`] backend: the
/// event-driven converge stage on the shared scheduler skeleton. Graphs
/// too small to shard run the serial convergence loop alone (the
/// degenerate case, bit-identical to the historical serial drivers).
/// Larger graphs run the serial loop first as the quality floor (its
/// sweeps are individually guarded, so it can never worsen — and the
/// sweep schedule matters for depth chains, where the reverse-topo
/// serial order reaches optima region proposals can miss), then
/// scheduler steps over dirty regions to quiescence, then a serial
/// polish to confirm the fixpoint across region boundaries; every stage
/// is guarded under the family metric, so the result is provably never
/// worse than the round-based serial driver. Applied-move counters come
/// straight from the metric registry: scheduler commits and serial
/// sweeps record the same `alg.*` counters at the move-commit sites, so
/// the per-kind attribution needs no arithmetic over driver totals.
pub(crate) fn converge_threads(
    mig: &mut Mig,
    max_rounds: usize,
    depth: bool,
    threads: usize,
) -> (AlgStats, usize) {
    let family = if depth { Family::Depth } else { Family::Size };
    let guard = match family {
        Family::Size => script_metric as fn(&Mig) -> (u64, u64),
        Family::Depth => depth_metric as fn(&Mig) -> (u64, u64),
    };
    let mut cfg = ShardConfig::new(threads);
    cfg.max_rounds = max_rounds;
    // Both families run guarded: merges are liberal (their profit comes
    // from cross-sweep strash sharing), so a step is kept only when it
    // improves the family's lexicographic metric.
    cfg.guard = Some(guard);
    let engine = AlgEngine { family };
    let mut serial_rounds = 0usize;
    let mut driver_rounds = 0usize;
    let ((), delta) = obs::metrics::scoped(|| {
        // Quality-floor baseline: the serial convergence loop (its
        // sweeps are individually guarded, so it can never worsen).
        let ran_baseline = cfg.shardable(mig);
        if ran_baseline {
            let (_, rounds) = converge(mig, max_rounds, family, guard);
            serial_rounds += rounds;
        }
        if ran_baseline && !cfg.shardable(mig) {
            // The baseline shrank the graph below the shard threshold:
            // it is already at the serial fixpoint, so the helper's
            // serial fallback would only re-confirm it at full-sweep
            // cost.
            return;
        }
        let mut serial = |m: &mut Mig| -> (u64, i64) {
            let (stats, rounds) = converge(m, max_rounds, family, guard);
            serial_rounds += rounds;
            (stats.total(), 0)
        };
        let driver = run_scheduled_converge(mig, &engine, &cfg, &mut serial, None, true);
        driver_rounds = driver.rounds;
    });
    delta.publish();
    let rounds = driver_rounds + serial_rounds;
    obs::metrics::add(obs::Metric::AlgRounds, rounds as u64);
    (AlgStats::from_delta(&delta), rounds)
}

/// The sharded optimization script. The script's round acceptance is
/// inherently serial (each round's stage selection depends on the
/// previous round's committed graph), so — like the bottom-up
/// functional-hashing variants, whose candidate DP is global — the
/// quality baseline is the serial in-place script, and the sharded
/// stages run afterwards as *refinement*: alternating event-driven size
/// and depth stages under the same lexicographic `(gates, depth)`
/// acceptance ([`crate::script_metric`]), each kept only when it
/// improves. This makes the sharded script never worse than the serial
/// script on any input, bit-deterministic for a fixed input and thread
/// count, and degenerate to exactly the serial script on graphs too
/// small to shard.
pub fn optimize_threads(mig: &mut Mig, max_rounds: usize, threads: usize) -> AlgStats {
    if threads <= 1 {
        return crate::optimize_in_place(mig, max_rounds);
    }
    let ((), delta) = obs::metrics::scoped(|| {
        // Quality baseline: the serial script (cheap — in-place and
        // incremental; the never-worse-than-serial floor).
        crate::optimize_in_place(mig, max_rounds);
        // Parallel refinement: the event-driven stages explore a
        // different move schedule (scheduler steps over region
        // proposals), driven by the same round skeleton as the serial
        // script (shared `script_round`); a round that fails to improve
        // the script metric is rolled back.
        for _ in 0..max_rounds {
            let round = crate::inplace::script_round(
                mig,
                &mut |m| converge_threads(m, 8, false, threads).0,
                &mut |m| converge_threads(m, 8, true, threads).0,
            );
            if round.is_none() {
                break;
            }
        }
    });
    delta.publish();
    AlgStats::from_delta(&delta)
}
