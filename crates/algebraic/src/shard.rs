//! Sharded algebraic rewriting: the Ω.A/Ω.D moves as proposals on the
//! engine-agnostic propose/commit protocol ([`mig::ProposeEngine`]).
//!
//! Workers scan their region's gates read-only for size merges or depth
//! moves over the frozen round snapshot; the serial commit phase
//! *re-derives* each move against the live graph (the move matchers are
//! the legality recheck: operand identities and — for depth moves — the
//! non-degrading level bound are all evaluated on live state), so a
//! proposal whose neighborhood drifted is refused and its region
//! retried next round.
//!
//! Guarantees, mirroring the serial engines:
//!
//! * **size** rounds run under the `(gates, depth)` lexicographic guard
//!   (merges are liberal — their profit comes from cross-sweep strash
//!   sharing — so a round is kept only when it nets out smaller);
//! * **depth** rounds run under a `(depth, gates)` lexicographic guard —
//!   committed moves can spend gates, and a round that fails to improve
//!   is rolled back, so sharded depth scripts are depth-monotone;
//! * results are bit-deterministic for a fixed input and thread count
//!   (driver property), and graphs too small to shard degenerate to the
//!   serial sweeps.
//!
//! After the sharded rounds reach quiescence a serial polish pass runs
//! to its own fixpoint, recovering moves that span region boundaries.

use crate::inplace::{
    commit_depth_move, commit_size_move, converge, depth_metric, match_depth_move_live,
    match_size_move, script_round, Family,
};
use crate::{script_metric, AlgStats};
use mig::{
    run_shard_rounds, CommitVerdict, Mig, NodeId, PartitionStrategy, ProposeEngine,
    RegionPartition, ShardConfig,
};
use std::collections::HashSet;

struct AlgEngine {
    family: Family,
}

/// The move kind a proposal was derived as. The commit phase refuses a
/// proposal whose live re-derivation lands on a *different* kind
/// (Conflicted — the region re-proposes from fresh analysis), so the
/// driver's per-kind gain attribution of kept rounds is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MoveKind {
    Merge,
    Assoc,
    Distrib,
}

impl MoveKind {
    fn of_depth(mv: &crate::inplace::DepthMove) -> MoveKind {
        match mv {
            crate::inplace::DepthMove::Assoc { .. } => MoveKind::Assoc,
            crate::inplace::DepthMove::Distrib { .. } => MoveKind::Distrib,
        }
    }
}

struct AlgProposal {
    root: NodeId,
    kind: MoveKind,
    /// Round-start nodes the analysis depends on: the root and the
    /// involved fanin gate(s). Operand *levels* can drift without
    /// touching the footprint; the commit-side re-derivation catches
    /// that.
    footprint: Vec<NodeId>,
    /// Expected gate-count gain: 1 for a merge, 0 for Ω.A, -1 for Ω.D.
    gain: i64,
}

impl ProposeEngine for AlgEngine {
    type Proposal = AlgProposal;
    type RoundState = ();

    fn begin_round(
        &self,
        mig: &Mig,
        max_regions: usize,
        _invalidated: &[NodeId],
    ) -> (RegionPartition, ()) {
        // Level bands: algebraic moves carry no fanout-free restriction,
        // and a band keeps a gate together with its fanins/grandchildren
        // more often than an FFR packing would.
        let p = RegionPartition::compute(mig, PartitionStrategy::LevelBands { max_regions });
        (p, ())
    }

    fn propose(
        &self,
        mig: &Mig,
        partition: &RegionPartition,
        _state: &(),
        region: u32,
    ) -> Vec<AlgProposal> {
        let mut props = Vec::new();
        let mut claimed: HashSet<NodeId> = HashSet::new();
        // Topmost members first, matching the driver's descending commit
        // order across regions.
        for &v in partition.members(region).iter().rev() {
            if claimed.contains(&v) || !mig.is_gate(v) || mig.fanout_count(v) == 0 {
                continue;
            }
            let prop = match self.family {
                Family::Size => match_size_move(mig, v).map(|mv| AlgProposal {
                    root: v,
                    kind: MoveKind::Merge,
                    footprint: vec![v, mv.g1, mv.g2],
                    gain: 1,
                }),
                // The frozen round snapshot plays the role of the serial
                // sweep's level snapshot: propose against its levels.
                Family::Depth => match_depth_move_live(mig, v).map(|(mv, inner)| AlgProposal {
                    root: v,
                    kind: MoveKind::of_depth(&mv),
                    footprint: vec![v, inner],
                    gain: match mv {
                        crate::inplace::DepthMove::Assoc { .. } => 0,
                        crate::inplace::DepthMove::Distrib { .. } => -1,
                    },
                }),
            };
            if let Some(p) = prop {
                claimed.extend(p.footprint.iter().copied());
                props.push(p);
            }
        }
        props
    }

    fn footprint<'a>(&self, p: &'a AlgProposal) -> &'a [NodeId] {
        &p.footprint
    }

    fn gain(&self, p: &AlgProposal) -> i64 {
        p.gain
    }

    fn commit(&self, mig: &mut Mig, p: AlgProposal) -> CommitVerdict {
        if !mig.is_gate(p.root) {
            return CommitVerdict::Conflicted;
        }
        // Re-derive against the live graph: a vanished pattern or a
        // kind flip means the neighborhood drifted (Conflicted — the
        // region retries from fresh analysis), while a refused
        // substitution (cycle through shared logic, reproduced root,
        // degraded level) would refuse again (Rejected).
        let mut stats = AlgStats::default();
        let applied = match self.family {
            Family::Size => {
                let Some(mv) = match_size_move(mig, p.root) else {
                    return CommitVerdict::Conflicted;
                };
                commit_size_move(mig, p.root, mv, &mut stats)
            }
            Family::Depth => {
                let Some((mv, _inner)) = match_depth_move_live(mig, p.root) else {
                    return CommitVerdict::Conflicted;
                };
                if MoveKind::of_depth(&mv) != p.kind {
                    return CommitVerdict::Conflicted;
                }
                commit_depth_move(mig, p.root, mv, &mut stats).is_some()
            }
        };
        if applied {
            CommitVerdict::Applied { replacements: 1 }
        } else {
            CommitVerdict::Rejected
        }
    }
}

/// One sharded stage: propose/commit rounds to quiescence, followed by
/// a serial polish to the serial engine's own fixpoint. Applied-move
/// counters of the driver rounds come from the committed gains of kept
/// rounds (exact: the commit phase refuses kind-flipped re-derivations).
fn sharded_stage(
    mig: &mut Mig,
    family: Family,
    threads: usize,
    max_rounds: usize,
) -> (AlgStats, usize) {
    let mut cfg = ShardConfig::new(threads);
    cfg.max_rounds = max_rounds;
    // Both families run guarded: merges are liberal (their profit comes
    // from cross-sweep strash sharing), so a round is kept only when it
    // improves the family's lexicographic metric.
    let guard = match family {
        Family::Size => script_metric as fn(&Mig) -> (u64, u64),
        Family::Depth => depth_metric as fn(&Mig) -> (u64, u64),
    };
    cfg.guard = Some(guard);
    let engine = AlgEngine { family };
    if !cfg.shardable(mig) {
        // Too small to shard: the serial convergence loop is the
        // degenerate case (bit-identical to a `threads == 1` run).
        return converge(mig, max_rounds, family, guard);
    }
    let stats = run_shard_rounds(mig, &engine, &cfg);
    let mut alg = AlgStats::default();
    match family {
        Family::Size => alg.merges = stats.replacements,
        Family::Depth => {
            // Every kept depth commit contributed 0 (assoc) or -1
            // (distrib) to the gain sum.
            let distrib = (-stats.gain).max(0) as u64;
            alg.distrib_moves = distrib.min(stats.replacements);
            alg.assoc_moves = stats.replacements - alg.distrib_moves;
        }
    }
    // Serial polish: recover cross-region moves from the quiescent graph.
    let (polish, polish_rounds) = converge(mig, max_rounds, family, guard);
    alg.absorb(polish);
    (alg, stats.rounds + polish_rounds)
}

/// [`crate::size_converge`] / [`crate::depth_converge`] backend with a
/// worker-thread count: `threads <= 1` (or a graph too small to shard)
/// runs the serial convergence loop; larger graphs run sharded
/// propose/commit rounds followed by a serial polish pass.
pub(crate) fn converge_threads(
    mig: &mut Mig,
    max_rounds: usize,
    depth: bool,
    threads: usize,
) -> (AlgStats, usize) {
    let family = if depth { Family::Depth } else { Family::Size };
    if threads <= 1 {
        let guard = if depth {
            depth_metric as fn(&Mig) -> (u64, u64)
        } else {
            script_metric as fn(&Mig) -> (u64, u64)
        };
        return converge(mig, max_rounds, family, guard);
    }
    sharded_stage(mig, family, threads, max_rounds)
}

/// The sharded optimization script. The script's round acceptance is
/// inherently serial (each round's stage selection depends on the
/// previous round's committed graph), so — like the bottom-up
/// functional-hashing variants, whose candidate DP is global — the
/// quality baseline is the serial in-place script, and the sharded
/// stages run afterwards as *refinement*: alternating sharded size and
/// depth rounds under the same lexicographic `(gates, depth)` acceptance
/// ([`crate::script_metric`]), each kept only when it improves. This
/// makes the sharded script never worse than the serial script on any
/// input, bit-deterministic for a fixed input and thread count, and
/// degenerate to exactly the serial script on graphs too small to shard.
pub fn optimize_threads(mig: &mut Mig, max_rounds: usize, threads: usize) -> AlgStats {
    if threads <= 1 {
        return crate::optimize_in_place(mig, max_rounds);
    }
    // Quality baseline: the serial script (cheap — in-place and
    // incremental; the never-worse-than-serial floor).
    let mut total = crate::optimize_in_place(mig, max_rounds);
    // Parallel refinement: sharded stages explore a different move
    // schedule (propose/commit rounds over region proposals), driven by
    // the same round skeleton as the serial script (shared
    // `script_round`); a round that fails to improve the script metric
    // is rolled back.
    for _ in 0..max_rounds {
        let round = script_round(
            mig,
            &mut |m| converge_threads(m, 8, false, threads).0,
            &mut |m| converge_threads(m, 8, true, threads).0,
        );
        match round {
            Some(round) => total.absorb(round),
            None => break,
        }
    }
    total
}
