//! Algebraic MIG optimization (paper refs \[3\] and \[4\]).
//!
//! The functional-hashing paper starts from "heavily optimized" MIGs
//! produced by the algebraic/Boolean optimization flow of Amarù et al.
//! (DAC'14/DAC'15). This crate reimplements the algebraic core of that
//! flow on top of the `mig` crate:
//!
//! * `Ω.M` (majority): `<xxy> = x`, `<xx̄y> = y` — applied implicitly by
//!   structural hashing;
//! * `Ω.A` (associativity): `<xu<yuz>> = <zu<yux>>` — used to retime
//!   late-arriving signals toward the root (depth rewriting);
//! * `Ω.D` (distributivity, L→R): `<xy<uvz>> = <<xyu><xyv>z>` — moves a
//!   critical signal one level up at the cost of one node (depth
//!   rewriting);
//! * `Ω.D` (distributivity, R→L): `<<xyu><xyv>z> = <xy<uvz>>` — saves one
//!   node whenever two fanins share two operands (size rewriting).
//!
//! Since the in-place unification the moves run as *local substitutions*
//! on the managed [`Mig`] network ([`size_rewrite_in_place`],
//! [`depth_rewrite_in_place`]): each candidate is matched read-only,
//! built speculatively and committed through [`Mig::replace_node`], with
//! incrementally maintained levels driving critical-path detection and
//! the structural-change log driving affected-cone re-scans in the
//! convergence loops ([`size_converge`], [`depth_converge`]). The
//! sharded backends ([`optimize_threads`]) run the same moves as
//! proposals on the engine-agnostic propose/commit protocol of
//! [`mig::ProposeEngine`]. The original rebuild-style passes are kept as
//! the differential-test reference ([`size_rewrite_rebuild`],
//! [`depth_rewrite_rebuild`], [`optimize_rebuild`]), mirroring how the
//! functional-hashing crate kept its `run_rebuild*` engines.
//!
//! [`optimize`] / [`optimize_in_place`] chain the passes into the
//! "script" used by the benchmark harness to produce Table III starting
//! points; all script drivers share the lexicographic
//! `(gates, depth)` round acceptance ([`script_metric`]), so serial,
//! in-place and sharded runs agree on convergence.

mod inplace;
mod shard;

pub use inplace::{depth_rewrite_in_place, optimize_in_place, size_rewrite_in_place};
pub use shard::optimize_threads;

use mig::{Mig, Signal};

/// Statistics of an algebraic pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgStats {
    /// Number of associativity moves applied.
    pub assoc_moves: u64,
    /// Number of distributivity (L→R) moves applied.
    pub distrib_moves: u64,
    /// Number of distributivity (R→L) merges applied.
    pub merges: u64,
    /// Event counters of the convergence scheduler (zero for purely
    /// serial runs).
    pub sched: mig::SchedStats,
}

impl AlgStats {
    /// Total applied moves of any kind.
    pub fn total(&self) -> u64 {
        self.assoc_moves + self.distrib_moves + self.merges
    }

    /// Accumulates another pass's counters into this one.
    pub fn absorb(&mut self, other: AlgStats) {
        self.assoc_moves += other.assoc_moves;
        self.distrib_moves += other.distrib_moves;
        self.merges += other.merges;
        self.sched.absorb(other.sched);
    }

    /// Reconstructs the legacy stats struct from a metric-registry delta.
    /// The in-place move commits record `alg.*` directly (serial sweeps
    /// and scheduler commits alike), so no arithmetic over driver totals
    /// is needed to attribute moves per kind.
    pub fn from_delta(d: &obs::Delta) -> AlgStats {
        AlgStats {
            assoc_moves: d.get(obs::Metric::AlgAssocMoves),
            distrib_moves: d.get(obs::Metric::AlgDistribMoves),
            merges: d.get(obs::Metric::AlgMerges),
            sched: mig::SchedStats::from_delta(d),
        }
    }
}

/// The optimization script's round-acceptance metric: `(gates, depth)`,
/// compared lexicographically (smaller is better). Shared by the rebuild
/// script, the in-place script and the sharded round guard, so all
/// agree on what counts as progress. The signature matches
/// [`mig::ShardConfig::guard`].
pub fn script_metric(mig: &Mig) -> (u64, u64) {
    (mig.num_gates() as u64, u64::from(mig.depth()))
}

/// Size-rewriting convergence on the event-driven scheduler: graphs too
/// small to shard run the serial convergence loop (affected-cone
/// re-scans seeded from the dirty log); larger graphs run guarded
/// scheduler steps over dirty regions — `threads` workers propose in
/// parallel — followed by a serial polish to the serial engine's own
/// fixpoint. Returns the applied-move counters and the number of
/// rounds/steps run. Every step and sweep is `(gates, depth)`-guarded,
/// so the result is never worse than the input.
pub fn size_converge(mig: &mut Mig, max_rounds: usize, threads: usize) -> (AlgStats, usize) {
    shard::converge_threads(mig, max_rounds, false, threads)
}

/// Depth-script convergence: like [`size_converge`] for the Ω.A/Ω.D
/// depth moves. Every committed move strictly lowers its root's level
/// and steps run under a `(depth, gates)` guard, so the result never
/// has more depth than the input.
pub fn depth_converge(mig: &mut Mig, max_rounds: usize, threads: usize) -> (AlgStats, usize) {
    shard::converge_threads(mig, max_rounds, true, threads)
}

/// One round of size-oriented rewriting on a copy (dangling cones
/// dropped first): routes through [`size_rewrite_in_place`]. Kept with
/// the historical rebuild-style signature for callers that want the
/// functional interface.
pub fn size_rewrite(mig: &Mig) -> (Mig, AlgStats) {
    let mut m = mig.cleanup();
    let stats = size_rewrite_in_place(&mut m);
    (m, stats)
}

/// One round of depth-oriented rewriting on a copy: routes through
/// [`depth_rewrite_in_place`]. See [`size_rewrite`].
pub fn depth_rewrite(mig: &Mig) -> (Mig, AlgStats) {
    let mut m = mig.cleanup();
    let stats = depth_rewrite_in_place(&mut m);
    (m, stats)
}

/// The optimization "script" on a copy: routes through
/// [`optimize_in_place`] (alternating size and depth rounds until the
/// lexicographic fixpoint or `max_rounds`), mirroring how the paper's
/// starting points were produced with the flows of refs \[3\] and \[4\].
pub fn optimize(mig: &Mig, max_rounds: usize) -> Mig {
    let mut m = mig.cleanup();
    optimize_in_place(&mut m, max_rounds);
    m
}

/// One round of size-oriented rewriting, rebuild-style: applies `Ω.D`
/// right-to-left (`<<xyu><xyv>z> -> <xy<uvz>>`) wherever two fanins of a
/// gate share two operands, and rebuilds with structural hashing (which
/// applies `Ω.M`). Kept as the differential-test reference for
/// [`size_rewrite_in_place`].
pub fn size_rewrite_rebuild(mig: &Mig) -> (Mig, AlgStats) {
    let mut out = Mig::new(mig.num_inputs());
    let mut stats = AlgStats::default();
    let mut map: Vec<Option<Signal>> = vec![None; mig.num_nodes()];
    map[0] = Some(Signal::ZERO);
    for i in 0..mig.num_inputs() {
        map[i + 1] = Some(out.input(i));
    }
    for g in mig.topo_gates() {
        let [a, b, c] = mig.fanins(g);
        let m = |s: Signal, map: &Vec<Option<Signal>>| {
            map[s.node() as usize]
                .expect("topological order")
                .complement_if(s.is_complemented())
        };
        let (sa, sb, sc) = (m(a, &map), m(b, &map), m(c, &map));
        let sig = maj_distrib_rl(&mut out, sa, sb, sc, &mut stats);
        map[g as usize] = Some(sig);
    }
    for o in mig.outputs() {
        let s = map[o.node() as usize]
            .expect("outputs mapped")
            .complement_if(o.is_complemented());
        out.add_output(s);
    }
    (out.cleanup(), stats)
}

/// Creates `<a b c>` in `out`, first trying the size-saving `Ω.D` R→L
/// pattern on any pair of gate operands sharing two operands.
fn maj_distrib_rl(out: &mut Mig, a: Signal, b: Signal, c: Signal, stats: &mut AlgStats) -> Signal {
    // Look for <G1 G2 z> with G1 = <x y u>, G2 = <x y v> (plain-polarity
    // gates sharing exactly two operands): rewrite to <x y <u v z>>.
    let ops = [a, b, c];
    for i in 0..3 {
        for j in 0..3 {
            if i == j {
                continue;
            }
            let (g1, g2) = (ops[i], ops[j]);
            let z = ops[3 - i - j];
            if g1.is_complemented() || g2.is_complemented() {
                continue;
            }
            if !out.is_gate(g1.node()) || !out.is_gate(g2.node()) {
                continue;
            }
            let f1 = out.fanins(g1.node());
            let f2 = out.fanins(g2.node());
            let shared: Vec<Signal> = f1.iter().copied().filter(|s| f2.contains(s)).collect();
            if shared.len() == 2 {
                let u = *f1.iter().find(|s| !shared.contains(s)).expect("third");
                let v = *f2.iter().find(|s| !shared.contains(s)).expect("third");
                stats.merges += 1;
                let inner = out.maj(u, v, z);
                return out.maj(shared[0], shared[1], inner);
            }
        }
    }
    out.maj(a, b, c)
}

/// One round of depth-oriented rewriting, rebuild-style: on every
/// critical gate, tries `Ω.A` associativity swaps and `Ω.D` L→R
/// distributivity to pull the latest-arriving operand one level closer
/// to the output (the depth script of paper ref \[3\]). Kept as the
/// differential-test reference for [`depth_rewrite_in_place`].
pub fn depth_rewrite_rebuild(mig: &Mig) -> (Mig, AlgStats) {
    let levels = mig.levels();
    let mut out = Mig::new(mig.num_inputs());
    let mut stats = AlgStats::default();
    let mut map: Vec<Option<Signal>> = vec![None; mig.num_nodes()];
    map[0] = Some(Signal::ZERO);
    for i in 0..mig.num_inputs() {
        map[i + 1] = Some(out.input(i));
    }
    for g in mig.topo_gates() {
        let [a, b, c] = mig.fanins(g);
        // Identify the unique critical operand in the *old* graph.
        let ops_old = [a, b, c];
        let maxl = ops_old
            .iter()
            .map(|s| levels[s.node() as usize])
            .max()
            .expect("three operands");
        let critical: Vec<usize> = (0..3)
            .filter(|&i| levels[ops_old[i].node() as usize] == maxl)
            .collect();
        let m = |s: Signal, map: &Vec<Option<Signal>>| {
            map[s.node() as usize]
                .expect("topological order")
                .complement_if(s.is_complemented())
        };
        let mut result: Option<Signal> = None;
        if critical.len() == 1 && mig.is_gate(ops_old[critical[0]].node()) && maxl >= 2 {
            let ci = critical[0];
            let inner_old = ops_old[ci];
            let outer: Vec<Signal> = (0..3)
                .filter(|&i| i != ci)
                .map(|i| m(ops_old[i], &map))
                .collect();
            let inner_f = mig.fanins(inner_old.node());
            let inner_ops: Vec<Signal> = inner_f.iter().map(|&s| m(s, &map)).collect();
            // Find the critical grandchild (deepest operand of the inner
            // gate) in the rebuilt graph, using the incrementally
            // maintained levels of the graph under construction.
            let zi = (0..3)
                .max_by_key(|&i| out.level(inner_ops[i].node()))
                .expect("three operands");
            let z = inner_ops[zi];
            let rest: Vec<Signal> = (0..3).filter(|&i| i != zi).map(|i| inner_ops[i]).collect();
            let z_lvl = out.level(z.node());
            let outer_lvls: Vec<u32> = outer.iter().map(|&s| out.level(s.node())).collect();

            // Ω.A: if the inner gate (plain polarity) shares an operand u
            // with the outer gate, swap z with the other outer operand x
            // when that flattens the path: <x u <y u z>> = <z u <y u x>>.
            if !inner_old.is_complemented() && result.is_none() {
                for (ui, &u) in outer.iter().enumerate() {
                    if rest.contains(&u) {
                        let x = outer[1 - ui];
                        let y = *rest.iter().find(|&&s| s != u).unwrap_or(&rest[0]);
                        let x_lvl = out.level(x.node());
                        if x_lvl + 1 < z_lvl {
                            let inner_new = out.maj(y, u, x);
                            result = Some(out.maj(z, u, inner_new));
                            stats.assoc_moves += 1;
                        }
                        break;
                    }
                }
            }
            // Ω.D L→R: <x y <u v z>> = <<x y u> <x y v> z> when both outer
            // operands and both non-critical inner operands arrive early.
            if result.is_none() && !inner_old.is_complemented() {
                let early = outer_lvls.iter().all(|&l| l + 1 < z_lvl)
                    && rest.iter().all(|&s| out.level(s.node()) + 1 < z_lvl);
                if early {
                    let g1 = out.maj(outer[0], outer[1], rest[0]);
                    let g2 = out.maj(outer[0], outer[1], rest[1]);
                    result = Some(out.maj(g1, g2, z));
                    stats.distrib_moves += 1;
                }
            }
        }
        let sig = result.unwrap_or_else(|| {
            let (sa, sb, sc) = (m(a, &map), m(b, &map), m(c, &map));
            out.maj(sa, sb, sc)
        });
        map[g as usize] = Some(sig);
    }
    for o in mig.outputs() {
        let s = map[o.node() as usize]
            .expect("outputs mapped")
            .complement_if(o.is_complemented());
        out.add_output(s);
    }
    (out.cleanup(), stats)
}

/// The rebuild-style optimization script: alternating rebuild size and
/// depth rounds under the shared [`script_metric`] acceptance. Kept as
/// the differential-test reference for [`optimize_in_place`].
pub fn optimize_rebuild(mig: &Mig, max_rounds: usize) -> Mig {
    let mut best = mig.cleanup();
    for _ in 0..max_rounds {
        let (after_size, _) = size_rewrite_rebuild(&best);
        let (after_depth, _) = depth_rewrite_rebuild(&after_size);
        let candidate = if script_metric(&after_depth) <= script_metric(&after_size) {
            after_depth
        } else {
            after_size
        };
        if script_metric(&candidate) >= script_metric(&best) {
            break;
        }
        best = candidate;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_rewrite_merges_distributive_pattern() {
        // <<xyu> <xyv> z> should collapse to <xy<uvz>> (3 gates -> 2).
        let mut m = Mig::new(5);
        let (x, y, u, v, z) = (m.input(0), m.input(1), m.input(2), m.input(3), m.input(4));
        let g1 = m.maj(x, y, u);
        let g2 = m.maj(x, y, v);
        let top = m.maj(g1, g2, z);
        m.add_output(top);
        assert_eq!(m.num_gates(), 3);
        let (opt, stats) = size_rewrite(&m);
        assert_eq!(stats.merges, 1);
        assert_eq!(opt.num_gates(), 2);
        assert_eq!(opt.output_truth_tables(), m.output_truth_tables());
        // The rebuild reference agrees on this local pattern.
        let (ropt, rstats) = size_rewrite_rebuild(&m);
        assert_eq!(rstats.merges, 1);
        assert_eq!(ropt.num_gates(), 2);
    }

    #[test]
    fn inplace_size_sweep_rolls_back_losing_merges() {
        // When both G1 and G2 stay alive through outside references, the
        // merge adds gates without freeing any; the guarded sweep must
        // roll back and leave the graph untouched.
        let mut m = Mig::new(6);
        let (x, y, u, v, z, w) = (
            m.input(0),
            m.input(1),
            m.input(2),
            m.input(3),
            m.input(4),
            m.input(5),
        );
        let g1 = m.maj(x, y, u);
        let g2 = m.maj(x, y, v);
        let top = m.maj(g1, g2, z);
        let side1 = m.maj(g1, w, z); // keeps g1 alive
        let side2 = m.maj(g2, w, !z); // keeps g2 alive
        m.add_output(top);
        m.add_output(side1);
        m.add_output(side2);
        let before = m.num_gates();
        let mut opt = m.clone();
        let stats = size_rewrite_in_place(&mut opt);
        assert_eq!(stats.total(), 0, "losing sweep reports no kept moves");
        assert_eq!(opt.num_gates(), before, "rollback restored the graph");
        assert_eq!(opt.output_truth_tables(), m.output_truth_tables());
    }

    #[test]
    fn depth_rewrite_flattens_chain() {
        // A long associative chain <x4 u <x3 u <x2 u <x1 u x0>>>>.
        let mut m = Mig::new(6);
        let u = m.input(5);
        let mut acc = m.input(0);
        for i in 1..5 {
            let x = m.input(i);
            acc = m.maj(x, u, acc);
        }
        m.add_output(acc);
        let before_depth = m.depth();
        let (opt, _) = depth_rewrite(&m);
        assert_eq!(opt.output_truth_tables(), m.output_truth_tables());
        assert!(opt.depth() <= before_depth);
    }

    #[test]
    fn optimize_is_function_preserving_and_never_worse() {
        let mut m = Mig::new(4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let x = m.xor(a, b);
        let y = m.maj(x, c, d);
        let g1 = m.maj(a, b, y);
        let g2 = m.maj(a, b, c);
        let top = m.maj(g1, g2, x);
        m.add_output(top);
        let opt = optimize(&m, 4);
        assert_eq!(opt.output_truth_tables(), m.output_truth_tables());
        assert!(opt.num_gates() <= m.num_gates());
    }

    #[test]
    fn ripple_chain_depth_reduction() {
        // An unbalanced AND chain: depth rewriting should restructure it
        // towards a balanced tree over a few rounds.
        let n = 8;
        let mut m = Mig::new(n);
        let mut acc = m.input(0);
        for i in 1..n {
            let x = m.input(i);
            acc = m.and(acc, x);
        }
        m.add_output(acc);
        let before = m.depth();
        let mut cur = m.cleanup();
        let (stats, rounds) = depth_converge(&mut cur, 16, 1);
        assert!(stats.total() > 0, "no moves applied");
        assert!(rounds >= 1);
        assert_eq!(cur.output_truth_tables(), m.output_truth_tables());
        assert!(cur.depth() < before, "{} !< {before}", cur.depth());
    }

    #[test]
    fn converge_loops_report_fixpoints() {
        let mut m = Mig::new(5);
        let (x, y, u, v, z) = (m.input(0), m.input(1), m.input(2), m.input(3), m.input(4));
        let g1 = m.maj(x, y, u);
        let g2 = m.maj(x, y, v);
        let top = m.maj(g1, g2, z);
        m.add_output(top);
        let want = m.output_truth_tables();
        let (stats, rounds) = size_converge(&mut m, 16, 1);
        assert_eq!(stats.merges, 1);
        assert!(rounds >= 2, "a confirming full sweep must run");
        assert_eq!(m.output_truth_tables(), want);
        // Converged: a further sweep finds nothing.
        let again = size_rewrite_in_place(&mut m);
        assert_eq!(again.total(), 0);
    }

    #[test]
    fn script_metric_is_lexicographic() {
        let mut small = Mig::new(2);
        let (a, b) = (small.input(0), small.input(1));
        let g = small.and(a, b);
        small.add_output(g);
        let mut deep = Mig::new(2);
        let (a, b) = (deep.input(0), deep.input(1));
        let g1 = deep.and(a, b);
        let g2 = deep.or(g1, a);
        deep.add_output(g2);
        assert!(script_metric(&small) < script_metric(&deep));
    }
}
