//! Differential properties of the in-place algebraic engine against the
//! rebuild reference, over random MIGs: truth-table preservation, the
//! never-worse guarantees of the guarded sweeps/scripts, and
//! determinism + quality of the sharded drivers.
//!
//! (Randomized with the workspace's deterministic `testrand` generator —
//! the container has no network access for a `proptest` dependency.)

use mig::{Mig, NodeId, Signal};
use testrand::Rng;

fn random_build(rng: &mut Rng, num_inputs: usize, num_steps: usize, outs: usize) -> Mig {
    let mut m = Mig::new(num_inputs);
    let mut sigs: Vec<Signal> = vec![Signal::ZERO];
    for i in 0..num_inputs {
        sigs.push(m.input(i));
    }
    for _ in 0..num_steps {
        let pick = |sigs: &[Signal], rng: &mut Rng| {
            sigs[rng.usize_below(sigs.len())].complement_if(rng.bool())
        };
        let (a, b, c) = (pick(&sigs, rng), pick(&sigs, rng), pick(&sigs, rng));
        sigs.push(m.maj(a, b, c));
    }
    for k in 0..outs {
        let s = sigs[sigs.len() - 1 - (k % sigs.len())];
        m.add_output(s.complement_if(k % 2 == 1));
    }
    m
}

type Fingerprint = (usize, Vec<(NodeId, [Signal; 3])>, Vec<Signal>);

fn fingerprint(m: &Mig) -> Fingerprint {
    let gates = m.gates().map(|g| (g, m.fanins(g))).collect();
    (m.num_nodes(), gates, m.outputs().to_vec())
}

#[test]
fn inplace_passes_preserve_function_and_never_worsen() {
    let mut rng = Rng::new(0xA16_0001);
    for case in 0..24 {
        let num_inputs = rng.range(3, 8);
        let steps = rng.range(10, 200);
        let outs = rng.range(1, 4);
        let m = random_build(&mut rng, num_inputs, steps, outs);
        let want = m.output_truth_tables();
        let base = m.cleanup();

        // Size sweep: (gates, depth)-guarded.
        let mut s = base.clone();
        migalg::size_rewrite_in_place(&mut s);
        assert_eq!(s.output_truth_tables(), want, "case {case}: size sweep");
        assert!(
            migalg::script_metric(&s) <= migalg::script_metric(&base),
            "case {case}: size sweep worsened ({:?} > {:?})",
            migalg::script_metric(&s),
            migalg::script_metric(&base)
        );

        // Depth sweep: depth-monotone.
        let mut d = base.clone();
        migalg::depth_rewrite_in_place(&mut d);
        assert_eq!(d.output_truth_tables(), want, "case {case}: depth sweep");
        assert!(
            d.depth() <= base.depth(),
            "case {case}: depth sweep raised depth ({} > {})",
            d.depth(),
            base.depth()
        );

        // The full script: lexicographically never worse than the input,
        // function-preserving, and in agreement with the rebuild
        // reference's function.
        let opt = migalg::optimize(&m, 6);
        assert_eq!(opt.output_truth_tables(), want, "case {case}: script");
        assert!(
            migalg::script_metric(&opt) <= migalg::script_metric(&base),
            "case {case}: script worsened"
        );
        let rb = migalg::optimize_rebuild(&m, 6);
        assert_eq!(
            rb.output_truth_tables(),
            want,
            "case {case}: rebuild script"
        );
    }
}

#[test]
fn converge_loops_are_fixpoints_and_depth_monotone() {
    let mut rng = Rng::new(0xA16_0002);
    for case in 0..12 {
        let num_inputs = rng.range(3, 8);
        let steps = rng.range(20, 150);
        let m = random_build(&mut rng, num_inputs, steps, 2);
        let want = m.output_truth_tables();
        let base = m.cleanup();

        let mut s = base.clone();
        let (_, s_rounds) = migalg::size_converge(&mut s, 50, 1);
        assert!(s_rounds < 50, "case {case}: size converge ran away");
        assert_eq!(s.output_truth_tables(), want, "case {case}");
        assert!(migalg::script_metric(&s) <= migalg::script_metric(&base));
        // Fixpoint: a second convergence run cannot improve the metric
        // (lateral restructuring may still shuffle equal-cost shapes).
        let metric = migalg::script_metric(&s);
        let (_, _) = migalg::size_converge(&mut s, 50, 1);
        assert_eq!(
            migalg::script_metric(&s),
            metric,
            "case {case}: size fixpoint unstable"
        );

        let mut d = base.clone();
        let (_, d_rounds) = migalg::depth_converge(&mut d, 50, 1);
        assert!(d_rounds < 50, "case {case}: depth converge ran away");
        assert_eq!(d.output_truth_tables(), want, "case {case}");
        assert!(
            d.depth() <= base.depth(),
            "case {case}: depth converge raised depth"
        );
    }
}

#[test]
fn sharded_algebraic_is_deterministic_and_never_worse_than_serial() {
    let mut rng = Rng::new(0xA16_0003);
    for case in 0..8 {
        let num_inputs = rng.range(3, 8);
        // Odd cases are large enough to trigger genuine multi-region
        // sharding; even cases stay in the degenerate serial regime.
        let steps = if case % 2 == 0 {
            rng.range(10, 60)
        } else {
            rng.range(150, 350)
        };
        let m = random_build(&mut rng, num_inputs, steps, 2);
        let want = m.output_truth_tables();
        let mut serial = m.cleanup();
        migalg::optimize_in_place(&mut serial, 6);
        for threads in [2usize, 4] {
            let mut sharded = m.cleanup();
            migalg::optimize_threads(&mut sharded, 6, threads);
            assert_eq!(
                sharded.output_truth_tables(),
                want,
                "case {case} @{threads}: function changed"
            );
            assert!(
                migalg::script_metric(&sharded) <= migalg::script_metric(&serial),
                "case {case} @{threads}: sharded worse than serial ({:?} > {:?})",
                migalg::script_metric(&sharded),
                migalg::script_metric(&serial)
            );
            let mut again = m.cleanup();
            migalg::optimize_threads(&mut again, 6, threads);
            assert_eq!(
                fingerprint(&sharded),
                fingerprint(&again),
                "case {case} @{threads}: nondeterministic netlist"
            );
            sharded.debug_check();
        }
        // Sharded converge passes: function + depth monotonicity.
        for threads in [2usize, 4] {
            let base = m.cleanup();
            let mut d = base.clone();
            migalg::depth_converge(&mut d, 50, threads);
            assert_eq!(d.output_truth_tables(), want, "case {case} @{threads}");
            assert!(
                d.depth() <= base.depth(),
                "case {case} @{threads}: sharded depth script not monotone"
            );
            let mut s = base.clone();
            migalg::size_converge(&mut s, 50, threads);
            assert_eq!(s.output_truth_tables(), want, "case {case} @{threads}");
            assert!(migalg::script_metric(&s) <= migalg::script_metric(&base));
        }
    }
}

#[test]
fn wide_adder_script_proved_equivalent_by_sat() {
    // 24 inputs — beyond exhaustive simulation; the check is a SAT miter
    // proof over the workspace CDCL solver.
    let w = 12;
    let mut m = Mig::new(2 * w);
    let mut carry = Signal::ZERO;
    for i in 0..w {
        let a = m.input(i);
        let b = m.input(w + i);
        let (s, c) = m.full_adder(a, b, carry);
        m.add_output(s);
        carry = c;
    }
    m.add_output(carry);
    let base = m.cleanup();

    let mut opt = base.clone();
    let stats = migalg::optimize_in_place(&mut opt, 8);
    let _ = stats;
    assert_eq!(
        cec::prove_equivalent(&base, &opt, None),
        cec::CecResult::Equivalent,
        "serial script refuted by the SAT miter"
    );

    let mut depth_opt = base.clone();
    let (dstats, _) = migalg::depth_converge(&mut depth_opt, 50, 1);
    assert!(dstats.total() > 0, "ripple carry chain left untouched");
    assert!(depth_opt.depth() < base.depth(), "no depth recovered");
    assert_eq!(
        cec::prove_equivalent(&base, &depth_opt, None),
        cec::CecResult::Equivalent,
        "depth script refuted by the SAT miter"
    );

    let mut sharded = base.clone();
    migalg::optimize_threads(&mut sharded, 8, 4);
    assert_eq!(
        cec::prove_equivalent(&base, &sharded, None),
        cec::CecResult::Equivalent,
        "sharded script refuted by the SAT miter"
    );
}
