//! AND-Inverter Graphs and DAG-aware rewriting — the baseline
//! representation the paper positions MIGs against (refs \[2\] and \[6\]).
//!
//! Provides a compact AIG with structural hashing ([`Aig`]), conversion
//! from MIGs, algebraic balancing (tree-height reduction, ref \[7\]) and a
//! DAG-aware 4-input cut rewriting pass in the style of Mishchenko et
//! al. (ref \[6\]) backed by the workspace's exact-synthesis engine with
//! AND2 gates.

use exact::{minimum_size, GateOp, Network, SynthesisConfig};
use mig::{Mig, NodeId, Signal};
use std::collections::HashMap;

/// An AND-inverter graph. Signals reuse [`mig::Signal`] (node index +
/// complement bit); node 0 is constant 0, nodes `1..=n` are inputs.
#[derive(Debug, Clone)]
pub struct Aig {
    fanins: Vec<[Signal; 2]>,
    num_inputs: usize,
    outputs: Vec<Signal>,
    strash: HashMap<[Signal; 2], NodeId>,
}

impl Aig {
    /// Creates an AIG with `num_inputs` primary inputs.
    pub fn new(num_inputs: usize) -> Self {
        let mut fanins = Vec::with_capacity(num_inputs + 1);
        for _ in 0..=num_inputs {
            fanins.push([Signal::ZERO; 2]);
        }
        Aig {
            fanins,
            num_inputs,
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of AND gates (the AIG size metric).
    pub fn num_gates(&self) -> usize {
        self.fanins.len() - 1 - self.num_inputs
    }

    /// The signal of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    pub fn input(&self, i: usize) -> Signal {
        assert!(i < self.num_inputs, "input {i} out of range");
        Signal::new((i + 1) as NodeId, false)
    }

    /// The primary outputs.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Appends a primary output.
    pub fn add_output(&mut self, s: Signal) {
        self.outputs.push(s);
    }

    /// Whether `n` is a gate node.
    pub fn is_gate(&self, n: NodeId) -> bool {
        (n as usize) > self.num_inputs && (n as usize) < self.fanins.len()
    }

    /// The fanins of gate `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a gate.
    pub fn fanins(&self, n: NodeId) -> [Signal; 2] {
        assert!(self.is_gate(n), "node {n} is not a gate");
        self.fanins[n as usize]
    }

    /// Gate ids in topological (index) order.
    pub fn gates(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.num_inputs as u32 + 1..self.fanins.len() as u32).map(|n| n as NodeId)
    }

    /// Creates (or reuses) the AND of two signals, with constant and
    /// idempotence simplifications.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if a == Signal::ZERO {
            return Signal::ZERO;
        }
        if a == Signal::ONE {
            return b;
        }
        if a == b {
            return a;
        }
        if a.node() == b.node() {
            return Signal::ZERO; // a & !a
        }
        let key = [a, b];
        if let Some(&n) = self.strash.get(&key) {
            return Signal::new(n, false);
        }
        let n = self.fanins.len() as NodeId;
        self.fanins.push(key);
        self.strash.insert(key, n);
        Signal::new(n, false)
    }

    /// Disjunction via DeMorgan.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        let n = self.and(!a, !b);
        !n
    }

    /// Levels per node (inputs 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.fanins.len()];
        for g in self.gates() {
            let f = self.fanins[g as usize];
            lv[g as usize] = 1 + f.iter().map(|s| lv[s.node() as usize]).max().unwrap_or(0);
        }
        lv
    }

    /// Depth: maximum output level.
    pub fn depth(&self) -> u32 {
        let lv = self.levels();
        self.outputs
            .iter()
            .map(|s| lv[s.node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Word-parallel simulation (one word per input).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs`.
    pub fn simulate_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs, "one word per input");
        let mut val = vec![0u64; self.fanins.len()];
        for (i, &w) in inputs.iter().enumerate() {
            val[i + 1] = w;
        }
        for g in self.gates() {
            let [a, b] = self.fanins[g as usize];
            let va = val[a.node() as usize] ^ if a.is_complemented() { u64::MAX } else { 0 };
            let vb = val[b.node() as usize] ^ if b.is_complemented() { u64::MAX } else { 0 };
            val[g as usize] = va & vb;
        }
        val
    }

    /// Complete output truth tables (inputs <= 16).
    pub fn output_truth_tables(&self) -> Vec<truth::TruthTable> {
        let n = self.num_inputs;
        let ins: Vec<truth::TruthTable> = (0..n).map(|i| truth::TruthTable::var(n, i)).collect();
        let mut val = vec![truth::TruthTable::zeros(n); self.fanins.len()];
        for (i, t) in ins.iter().enumerate() {
            val[i + 1] = t.clone();
        }
        for g in self.gates() {
            let [a, b] = self.fanins[g as usize];
            let ta = if a.is_complemented() {
                !&val[a.node() as usize]
            } else {
                val[a.node() as usize].clone()
            };
            let tb = if b.is_complemented() {
                !&val[b.node() as usize]
            } else {
                val[b.node() as usize].clone()
            };
            val[g as usize] = &ta & &tb;
        }
        self.outputs
            .iter()
            .map(|s| {
                let t = val[s.node() as usize].clone();
                if s.is_complemented() {
                    !t
                } else {
                    t
                }
            })
            .collect()
    }

    /// Rebuilds the AIG keeping only the output cone.
    pub fn cleanup(&self) -> Aig {
        let mut out = Aig::new(self.num_inputs);
        let mut map: Vec<Option<Signal>> = vec![None; self.fanins.len()];
        map[0] = Some(Signal::ZERO);
        for i in 0..self.num_inputs {
            map[i + 1] = Some(out.input(i));
        }
        let mut live = vec![false; self.fanins.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|s| s.node()).collect();
        while let Some(n) = stack.pop() {
            if live[n as usize] || (n as usize) <= self.num_inputs {
                continue;
            }
            live[n as usize] = true;
            for s in self.fanins[n as usize] {
                stack.push(s.node());
            }
        }
        for g in self.gates() {
            if !live[g as usize] {
                continue;
            }
            let [a, b] = self.fanins[g as usize];
            let sa = map[a.node() as usize]
                .expect("topo")
                .complement_if(a.is_complemented());
            let sb = map[b.node() as usize]
                .expect("topo")
                .complement_if(b.is_complemented());
            map[g as usize] = Some(out.and(sa, sb));
        }
        for o in &self.outputs {
            let s = map[o.node() as usize]
                .expect("output cone mapped")
                .complement_if(o.is_complemented());
            out.add_output(s);
        }
        out
    }
}

/// Converts an MIG into an AIG (`<abc> = ab | c(a|b)`, up to 4 ANDs per
/// majority gate before hashing).
pub fn from_mig(mig: &Mig) -> Aig {
    let mut aig = Aig::new(mig.num_inputs());
    let mut map: Vec<Option<Signal>> = vec![None; mig.num_nodes()];
    map[0] = Some(Signal::ZERO);
    for i in 0..mig.num_inputs() {
        map[i + 1] = Some(aig.input(i));
    }
    for g in mig.topo_gates() {
        let [a, b, c] = mig.fanins(g);
        let m = |s: Signal, map: &Vec<Option<Signal>>| {
            map[s.node() as usize]
                .expect("topo")
                .complement_if(s.is_complemented())
        };
        let (sa, sb, sc) = (m(a, &map), m(b, &map), m(c, &map));
        let ab = aig.and(sa, sb);
        let aorb = aig.or(sa, sb);
        let c_ab = aig.and(sc, aorb);
        map[g as usize] = Some(aig.or(ab, c_ab));
    }
    for o in mig.outputs() {
        let s = map[o.node() as usize]
            .expect("output cone mapped")
            .complement_if(o.is_complemented());
        aig.add_output(s);
    }
    aig
}

/// Converts an AIG into an MIG (each AND becomes `<0ab>`; structural
/// hashing may merge nodes, the function is preserved). This is the
/// ingestion path for AIGER files read by the `io` crate.
pub fn to_mig(aig: &Aig) -> Mig {
    let mut mig = Mig::new(aig.num_inputs());
    let mut map: Vec<Option<Signal>> = vec![None; aig.fanins.len()];
    map[0] = Some(Signal::ZERO);
    for i in 0..aig.num_inputs() {
        map[i + 1] = Some(mig.input(i));
    }
    for g in aig.gates() {
        let [a, b] = aig.fanins(g);
        let sa = map[a.node() as usize]
            .expect("topo")
            .complement_if(a.is_complemented());
        let sb = map[b.node() as usize]
            .expect("topo")
            .complement_if(b.is_complemented());
        map[g as usize] = Some(mig.and(sa, sb));
    }
    for o in aig.outputs() {
        let s = map[o.node() as usize]
            .expect("output cone mapped")
            .complement_if(o.is_complemented());
        mig.add_output(s);
    }
    mig
}

/// Algebraic balancing (tree-height reduction, paper ref \[7\]): collects
/// maximal single-polarity AND trees and rebuilds them as balanced trees
/// ordered by arrival time.
pub fn balance(aig: &Aig) -> Aig {
    let mut out = Aig::new(aig.num_inputs());
    let mut map: Vec<Option<Signal>> = vec![None; aig.fanins.len()];
    map[0] = Some(Signal::ZERO);
    for i in 0..aig.num_inputs() {
        map[i + 1] = Some(out.input(i));
    }
    let fanout = {
        let mut fc = vec![0u32; aig.fanins.len()];
        for g in aig.gates() {
            for s in aig.fanins(g) {
                fc[s.node() as usize] += 1;
            }
        }
        for o in aig.outputs() {
            fc[o.node() as usize] += 1;
        }
        fc
    };
    for g in aig.gates() {
        // Collect the AND-tree leaves: descend through plain-polarity,
        // single-fanout AND children.
        let mut leaves: Vec<Signal> = Vec::new();
        let mut stack = vec![Signal::new(g, false)];
        while let Some(s) = stack.pop() {
            let expandable = !s.is_complemented()
                && aig.is_gate(s.node())
                && (s.node() == g || fanout[s.node() as usize] == 1);
            if expandable {
                let [a, b] = aig.fanins(s.node());
                stack.push(a);
                stack.push(b);
            } else {
                leaves.push(s);
            }
        }
        // Map leaves and build a balanced tree (earliest-arriving first).
        let mut mapped: Vec<Signal> = leaves
            .iter()
            .map(|s| {
                map[s.node() as usize]
                    .expect("topological order")
                    .complement_if(s.is_complemented())
            })
            .collect();
        let lv = out.levels();
        mapped.sort_by_key(|s| lv.get(s.node() as usize).copied().unwrap_or(0));
        while mapped.len() > 1 {
            let a = mapped.remove(0);
            let b = mapped.remove(0);
            let n = out.and(a, b);
            // Insert by level to keep the tree balanced.
            let lv = out.levels();
            let nl = lv.get(n.node() as usize).copied().unwrap_or(0);
            let pos = mapped
                .iter()
                .position(|s| lv.get(s.node() as usize).copied().unwrap_or(0) > nl)
                .unwrap_or(mapped.len());
            mapped.insert(pos, n);
        }
        map[g as usize] = Some(mapped.pop().unwrap_or(Signal::ZERO));
    }
    for o in aig.outputs() {
        let s = map[o.node() as usize]
            .expect("output cone mapped")
            .complement_if(o.is_complemented());
        out.add_output(s);
    }
    out.cleanup()
}

/// DAG-aware rewriting (paper ref \[6\]) for AIGs: enumerate 4-input cuts,
/// replace by exact-minimum AND2 networks when the (fanout-legal) gain is
/// positive. Minimum networks are synthesized on demand per NPN class and
/// memoized; classes whose synthesis exceeds the conflict budget keep
/// their original structure.
pub struct AigRewriter {
    cache: std::cell::RefCell<HashMap<u16, Option<Network>>>,
    canon: truth::Npn4Canonizer,
    conflict_budget: u64,
}

impl Default for AigRewriter {
    fn default() -> Self {
        Self::new(50_000)
    }
}

impl AigRewriter {
    /// Creates a rewriter with a per-class synthesis conflict budget.
    pub fn new(conflict_budget: u64) -> Self {
        AigRewriter {
            cache: std::cell::RefCell::new(HashMap::new()),
            canon: truth::Npn4Canonizer::new(),
            conflict_budget,
        }
    }

    fn min_network(&self, rep: u16) -> Option<Network> {
        if let Some(n) = self.cache.borrow().get(&rep) {
            return n.clone();
        }
        let cfg = SynthesisConfig {
            op: GateOp::And2,
            max_gates: 12,
            conflict_budget: Some(self.conflict_budget),
            ..SynthesisConfig::default()
        };
        let net = minimum_size(&truth::TruthTable::from_u16(rep), &cfg).ok();
        self.cache.borrow_mut().insert(rep, net.clone());
        net
    }

    /// One rewriting pass (top-down reconstruction, like the MIG engine's
    /// `T` variant but over AND2 networks).
    pub fn rewrite(&self, aig: &Aig) -> Aig {
        // Enumerate 4-cuts per node (2-fanin merge, padded-to-4 u16 tts).
        let k = 4;
        let mut cuts: Vec<Vec<(Vec<NodeId>, u16)>> = Vec::with_capacity(aig.fanins.len());
        cuts.push(vec![(vec![], 0u16)]);
        for i in 0..aig.num_inputs {
            cuts.push(vec![(vec![(i + 1) as NodeId], 0xaaaa)]);
        }
        for g in aig.gates() {
            let [a, b] = aig.fanins(g);
            let mut res: Vec<(Vec<NodeId>, u16)> = vec![(vec![g], 0xaaaa)];
            for (la, ta) in &cuts[a.node() as usize].clone() {
                for (lb, tb) in &cuts[b.node() as usize].clone() {
                    let mut leaves = la.clone();
                    for &l in lb {
                        if !leaves.contains(&l) {
                            leaves.push(l);
                        }
                    }
                    leaves.sort_unstable();
                    if leaves.len() > k {
                        continue;
                    }
                    let ea = expand4(*ta, la, &leaves);
                    let eb = expand4(*tb, lb, &leaves);
                    let va = if a.is_complemented() { !ea } else { ea };
                    let vb = if b.is_complemented() { !eb } else { eb };
                    let tt = va & vb;
                    if !res.iter().any(|(l, t)| *l == leaves && *t == tt) {
                        res.push((leaves, tt));
                    }
                }
            }
            res.truncate(10);
            cuts.push(res);
        }

        let fanout = {
            let mut fc = vec![0u32; aig.fanins.len()];
            for g in aig.gates() {
                for s in aig.fanins(g) {
                    fc[s.node() as usize] += 1;
                }
            }
            for o in aig.outputs() {
                fc[o.node() as usize] += 1;
            }
            fc
        };
        let mut out = Aig::new(aig.num_inputs());
        let mut memo: Vec<Option<Signal>> = vec![None; aig.fanins.len()];
        memo[0] = Some(Signal::ZERO);
        for i in 0..aig.num_inputs {
            memo[i + 1] = Some(out.input(i));
        }
        for root in aig.outputs().iter().map(|o| o.node()).collect::<Vec<_>>() {
            if aig.is_gate(root) {
                self.opt(aig, &cuts, &fanout, &mut out, &mut memo, root);
            }
        }
        for o in aig.outputs() {
            let s = memo[o.node() as usize]
                .expect("output cone rebuilt")
                .complement_if(o.is_complemented());
            out.add_output(s);
        }
        out.cleanup()
    }

    fn opt(
        &self,
        aig: &Aig,
        cuts: &[Vec<(Vec<NodeId>, u16)>],
        fanout: &[u32],
        out: &mut Aig,
        memo: &mut Vec<Option<Signal>>,
        v: NodeId,
    ) -> Signal {
        if let Some(s) = memo[v as usize] {
            return s;
        }
        // Find the best legal replacement.
        let mut best: Option<(i32, Vec<NodeId>, Network, truth::NpnTransform)> = None;
        for (leaves, tt) in &cuts[v as usize] {
            if leaves.len() == 1 && leaves[0] == v {
                continue;
            }
            let internal = internal_nodes(aig, v, leaves);
            if !legal(aig, v, &internal, fanout) {
                continue;
            }
            let (rep, t) = self.canon.canonize(*tt);
            let Some(net) = self.min_network(rep) else {
                continue;
            };
            let gain = internal.len() as i32 - net.size() as i32;
            if gain >= 1 && best.as_ref().is_none_or(|(g, ..)| gain > *g) {
                best = Some((gain, leaves.clone(), net, t));
            }
        }
        let sig = if let Some((_, leaves, net, t)) = best {
            let leaf_sigs: Vec<Signal> = leaves
                .iter()
                .map(|&l| {
                    if aig.is_gate(l) {
                        self.opt(aig, cuts, fanout, out, memo, l)
                    } else {
                        memo[l as usize].expect("terminal mapped")
                    }
                })
                .collect();
            let inv = t.inverse();
            let mapped: Vec<Signal> = (0..4)
                .map(|i| {
                    let pos = inv.perm(i);
                    if pos < leaf_sigs.len() {
                        leaf_sigs[pos].complement_if(inv.input_negated(i))
                    } else {
                        Signal::ZERO
                    }
                })
                .collect();
            instantiate_and2(&net, out, &mapped).complement_if(inv.output_negated())
        } else {
            let [a, b] = aig.fanins(v);
            let sa = self
                .resolve(aig, cuts, fanout, out, memo, a.node())
                .complement_if(a.is_complemented());
            let sb = self
                .resolve(aig, cuts, fanout, out, memo, b.node())
                .complement_if(b.is_complemented());
            out.and(sa, sb)
        };
        memo[v as usize] = Some(sig);
        sig
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &self,
        aig: &Aig,
        cuts: &[Vec<(Vec<NodeId>, u16)>],
        fanout: &[u32],
        out: &mut Aig,
        memo: &mut Vec<Option<Signal>>,
        n: NodeId,
    ) -> Signal {
        if aig.is_gate(n) {
            self.opt(aig, cuts, fanout, out, memo, n)
        } else {
            memo[n as usize].expect("terminal mapped")
        }
    }
}

fn expand4(tt: u16, from: &[NodeId], to: &[NodeId]) -> u16 {
    let mut out = 0u16;
    for j in 0..16usize {
        let mut src = 0usize;
        for (i, l) in from.iter().enumerate() {
            let pos = to.iter().position(|x| x == l).expect("subset");
            if (j >> pos) & 1 == 1 {
                src |= 1 << i;
            }
        }
        if (tt >> src) & 1 == 1 {
            out |= 1 << j;
        }
    }
    out
}

fn internal_nodes(aig: &Aig, root: NodeId, leaves: &[NodeId]) -> Vec<NodeId> {
    let mut internal = Vec::new();
    let mut stack = vec![root];
    let mut seen = std::collections::HashSet::new();
    while let Some(n) = stack.pop() {
        if leaves.contains(&n) || !aig.is_gate(n) || !seen.insert(n) {
            continue;
        }
        internal.push(n);
        for s in aig.fanins(n) {
            stack.push(s.node());
        }
    }
    internal
}

fn legal(aig: &Aig, root: NodeId, internal: &[NodeId], fanout: &[u32]) -> bool {
    for &n in internal {
        if n == root {
            continue;
        }
        let inside = internal
            .iter()
            .filter(|&&m| m != n && aig.fanins(m).iter().any(|s| s.node() == n))
            .count() as u32;
        if fanout[n as usize] != inside {
            return false;
        }
    }
    true
}

fn instantiate_and2(net: &Network, aig: &mut Aig, leaves: &[Signal]) -> Signal {
    let mut sigs: Vec<Signal> = Vec::with_capacity(1 + leaves.len() + net.size());
    sigs.push(Signal::ZERO);
    sigs.extend_from_slice(leaves);
    for g in net.gates() {
        let a = sigs[g.fanins[0].0 as usize].complement_if(g.fanins[0].1);
        let b = sigs[g.fanins[1].0 as usize].complement_if(g.fanins[1].1);
        sigs.push(aig.and(a, b));
    }
    let (r, c) = net.output();
    sigs[r as usize].complement_if(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_or_and_simplifications() {
        let mut a = Aig::new(2);
        let (x, y) = (a.input(0), a.input(1));
        assert_eq!(a.and(x, Signal::ZERO), Signal::ZERO);
        assert_eq!(a.and(x, Signal::ONE), x);
        assert_eq!(a.and(x, x), x);
        assert_eq!(a.and(x, !x), Signal::ZERO);
        let g1 = a.and(x, y);
        let g2 = a.and(y, x);
        assert_eq!(g1, g2);
        assert_eq!(a.num_gates(), 1);
    }

    #[test]
    fn mig_conversion_preserves_function() {
        let mut m = Mig::new(4);
        let ins: Vec<_> = m.inputs().collect();
        let g1 = m.maj(ins[0], ins[1], ins[2]);
        let g2 = m.xor(g1, ins[3]);
        m.add_output(g2);
        m.add_output(!g1);
        let a = from_mig(&m);
        assert_eq!(a.output_truth_tables(), m.output_truth_tables());
    }

    #[test]
    fn balance_reduces_chain_depth() {
        let mut a = Aig::new(8);
        let mut acc = a.input(0);
        for i in 1..8 {
            let x = a.input(i);
            acc = a.and(acc, x);
        }
        a.add_output(acc);
        assert_eq!(a.depth(), 7);
        let bal = balance(&a);
        assert_eq!(bal.output_truth_tables(), a.output_truth_tables());
        assert!(bal.depth() <= 4, "depth {}", bal.depth());
        assert_eq!(bal.num_gates(), 7);
    }

    #[test]
    fn rewrite_shrinks_redundant_xor() {
        // A wasteful xor2: (a|b) & !(a&b) plus a redundant re-AND.
        let mut a = Aig::new(2);
        let (x, y) = (a.input(0), a.input(1));
        let o1 = a.or(x, y);
        let n1 = a.and(x, y);
        let t = a.and(o1, !n1);
        let t2 = a.and(t, o1);
        a.add_output(t2);
        let rw = AigRewriter::default().rewrite(&a);
        assert_eq!(rw.output_truth_tables(), a.output_truth_tables());
        assert!(rw.num_gates() <= 3, "gates {}", rw.num_gates());
    }

    #[test]
    fn rewrite_preserves_multi_output_function() {
        let mut m = Mig::new(4);
        let ins: Vec<_> = m.inputs().collect();
        let (s1, c1) = m.full_adder(ins[0], ins[1], ins[2]);
        let (s2, c2) = m.full_adder(s1, ins[3], c1);
        m.add_output(s2);
        m.add_output(c2);
        let a = from_mig(&m);
        let rw = AigRewriter::default().rewrite(&a);
        assert_eq!(rw.output_truth_tables(), a.output_truth_tables());
        assert!(rw.num_gates() <= a.num_gates());
    }

    #[test]
    fn mig_aig_mig_roundtrip_preserves_function() {
        let mut m = Mig::new(4);
        let ins: Vec<_> = m.inputs().collect();
        let (s1, c1) = m.full_adder(ins[0], ins[1], ins[2]);
        let g = m.maj(s1, c1, ins[3]);
        m.add_output(g);
        m.add_output(!s1);
        let back = to_mig(&from_mig(&m));
        assert_eq!(back.output_truth_tables(), m.output_truth_tables());
        assert_eq!(back.num_inputs(), m.num_inputs());
        assert_eq!(back.num_outputs(), m.num_outputs());
    }

    #[test]
    fn cleanup_drops_dead_gates() {
        let mut a = Aig::new(2);
        let (x, y) = (a.input(0), a.input(1));
        let _dead = a.and(x, !y);
        let live = a.and(x, y);
        a.add_output(live);
        assert_eq!(a.num_gates(), 2);
        let c = a.cleanup();
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.output_truth_tables(), a.output_truth_tables());
    }
}
