//! Cut-based k-LUT technology mapping.
//!
//! Stands in for the ABC standard-cell mapping used in the paper's
//! Table IV (see DESIGN.md for the substitution rationale): a classic
//! two-pass mapper in the style of ABC's `if` command — a depth-oriented
//! pass computing arrival times over priority cuts, followed by area-flow
//! recovery under required-time constraints, and cover extraction.
//!
//! *Area* is the number of LUTs in the cover and *depth* the number of LUT
//! levels, the usual technology-mapping quality metrics.

use cuts::{enumerate_cuts, CutConfig, CutSet};
use mig::{Mig, NodeId};

/// Mapper configuration.
#[derive(Debug, Clone, Copy)]
pub struct MapConfig {
    /// LUT input count `k` (2..=6).
    pub lut_size: usize,
    /// Priority-cut bound per node.
    pub max_cuts: usize,
    /// Number of area-recovery rounds after the depth-oriented pass.
    pub area_rounds: usize,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            lut_size: 6,
            max_cuts: 8,
            area_rounds: 2,
        }
    }
}

/// One LUT of a mapping: a root node covered by a cut.
#[derive(Debug, Clone)]
pub struct Lut {
    /// The MIG node whose function this LUT computes (plain polarity).
    pub root: NodeId,
    /// Leaf nodes (LUT inputs), ascending.
    pub leaves: Vec<NodeId>,
    /// The LUT function over the leaves.
    pub tt: u64,
}

/// A complete LUT cover of an MIG.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Chosen LUTs in topological order of their roots.
    pub luts: Vec<Lut>,
    /// Number of LUTs (the paper's mapped *area* analogue).
    pub area: usize,
    /// LUT levels on the longest output path (the mapped *depth*).
    pub depth: u32,
}

impl Mapping {
    /// Evaluates the mapped network on one input assignment and returns
    /// the output values (for equivalence checks against the MIG).
    pub fn evaluate(&self, mig: &Mig, assignment: &[bool]) -> Vec<bool> {
        let mut val = vec![false; mig.num_nodes()];
        for (i, &b) in assignment.iter().enumerate() {
            val[i + 1] = b;
        }
        for lut in &self.luts {
            let mut idx = 0usize;
            for (pos, &l) in lut.leaves.iter().enumerate() {
                if val[l as usize] {
                    idx |= 1 << pos;
                }
            }
            val[lut.root as usize] = (lut.tt >> idx) & 1 == 1;
        }
        mig.outputs()
            .iter()
            .map(|o| val[o.node() as usize] ^ o.is_complemented())
            .collect()
    }
}

/// Maps `mig` onto `k`-input LUTs.
///
/// # Panics
///
/// Panics if `config.lut_size` is outside `2..=6`.
///
/// # Examples
///
/// ```
/// use mig::Mig;
/// use techmap::{map_luts, MapConfig};
///
/// let mut m = Mig::new(3);
/// let (a, b, c) = (m.input(0), m.input(1), m.input(2));
/// let (s, co) = m.full_adder(a, b, c);
/// m.add_output(s);
/// m.add_output(co);
/// let mapping = map_luts(&m, &MapConfig::default());
/// // A full adder fits in two 3-input LUTs, one level deep.
/// assert_eq!(mapping.area, 2);
/// assert_eq!(mapping.depth, 1);
/// ```
pub fn map_luts(mig: &Mig, config: &MapConfig) -> Mapping {
    assert!(
        (2..=6).contains(&config.lut_size),
        "LUT size {} out of range",
        config.lut_size
    );
    let cuts = enumerate_cuts(
        mig,
        &CutConfig {
            cut_size: config.lut_size,
            max_cuts: config.max_cuts,
        },
    );
    let n = mig.num_nodes();
    let topo = mig.topo_gates();
    let refs: Vec<f64> = mig
        .fanout_counts()
        .iter()
        .map(|&c| f64::from(c.max(1)))
        .collect();

    // Pass 1: depth-oriented.
    let mut arrival = vec![0u32; n];
    let mut flow = vec![0.0f64; n];
    let mut choice: Vec<Option<usize>> = vec![None; n];
    depth_pass(&topo, &cuts, &refs, &mut arrival, &mut flow, &mut choice);

    // Passes 2..: area recovery under required times.
    for _ in 0..config.area_rounds {
        let required = required_times(mig, &topo, &arrival);
        area_pass(
            &topo,
            &cuts,
            &refs,
            &required,
            &mut arrival,
            &mut flow,
            &mut choice,
        );
    }

    extract_cover(mig, &topo, &cuts, &choice, &arrival)
}

fn depth_pass(
    topo: &[NodeId],
    cuts: &CutSet,
    refs: &[f64],
    arrival: &mut [u32],
    flow: &mut [f64],
    choice: &mut [Option<usize>],
) {
    for &g in topo {
        let mut best: Option<(u32, f64, usize)> = None;
        for (ci, cut) in cuts.of(g).iter().enumerate() {
            if cut.len() == 1 && cut.leaves()[0] == g {
                continue; // trivial cut cannot implement the node
            }
            let depth = 1 + cut
                .leaves()
                .iter()
                .map(|&l| arrival[l as usize])
                .max()
                .unwrap_or(0);
            let af = 1.0
                + cut
                    .leaves()
                    .iter()
                    .map(|&l| flow[l as usize] / refs[l as usize])
                    .sum::<f64>();
            if best.is_none_or(|(bd, bf, _)| (depth, af) < (bd, bf)) {
                best = Some((depth, af, ci));
            }
        }
        let (d, f, ci) = best.expect("every gate has a non-trivial cut");
        arrival[g as usize] = d;
        flow[g as usize] = f;
        choice[g as usize] = Some(ci);
    }
}

fn required_times(mig: &Mig, topo: &[NodeId], arrival: &[u32]) -> Vec<u32> {
    let target = mig
        .outputs()
        .iter()
        .map(|o| arrival[o.node() as usize])
        .max()
        .unwrap_or(0);
    let mut req = vec![u32::MAX; arrival.len()];
    for o in mig.outputs() {
        req[o.node() as usize] = target;
    }
    // Conservative reverse propagation along structural edges.
    for &g in topo.iter().rev() {
        let r = req[g as usize];
        if r == u32::MAX {
            continue;
        }
        for s in mig.fanins(g) {
            let nr = r.saturating_sub(1);
            if req[s.node() as usize] > nr {
                req[s.node() as usize] = nr;
            }
        }
    }
    req
}

#[allow(clippy::too_many_arguments)]
fn area_pass(
    topo: &[NodeId],
    cuts: &CutSet,
    refs: &[f64],
    required: &[u32],
    arrival: &mut [u32],
    flow: &mut [f64],
    choice: &mut [Option<usize>],
) {
    for &g in topo {
        let mut best: Option<(f64, u32, usize)> = None;
        for (ci, cut) in cuts.of(g).iter().enumerate() {
            if cut.len() == 1 && cut.leaves()[0] == g {
                continue;
            }
            let depth = 1 + cut
                .leaves()
                .iter()
                .map(|&l| arrival[l as usize])
                .max()
                .unwrap_or(0);
            if required[g as usize] != u32::MAX && depth > required[g as usize] {
                continue;
            }
            let af = 1.0
                + cut
                    .leaves()
                    .iter()
                    .map(|&l| flow[l as usize] / refs[l as usize])
                    .sum::<f64>();
            if best.is_none_or(|(bf, bd, _)| (af, depth) < (bf, bd)) {
                best = Some((af, depth, ci));
            }
        }
        if let Some((f, d, ci)) = best {
            arrival[g as usize] = d;
            flow[g as usize] = f;
            choice[g as usize] = Some(ci);
        }
    }
}

fn extract_cover(
    mig: &Mig,
    topo: &[NodeId],
    cuts: &CutSet,
    choice: &[Option<usize>],
    arrival: &[u32],
) -> Mapping {
    let mut needed = vec![false; mig.num_nodes()];
    let mut stack: Vec<NodeId> = mig
        .outputs()
        .iter()
        .map(|o| o.node())
        .filter(|&n| mig.is_gate(n))
        .collect();
    let mut luts = Vec::new();
    while let Some(r) = stack.pop() {
        if needed[r as usize] {
            continue;
        }
        needed[r as usize] = true;
        let ci = choice[r as usize].expect("gate was mapped");
        let cut = &cuts.of(r)[ci];
        for &l in cut.leaves() {
            if mig.is_gate(l) {
                stack.push(l);
            }
        }
        luts.push(Lut {
            root: r,
            leaves: cut.leaves().to_vec(),
            tt: cut.truth_table(),
        });
    }
    // Topological order of the roots (slot order is not topological after
    // in-place rewriting).
    let mut rank = vec![0usize; mig.num_nodes()];
    for (i, &g) in topo.iter().enumerate() {
        rank[g as usize] = i;
    }
    luts.sort_by_key(|l| rank[l.root as usize]);
    let depth = mig
        .outputs()
        .iter()
        .map(|o| arrival[o.node() as usize])
        .max()
        .unwrap_or(0);
    Mapping {
        area: luts.len(),
        depth,
        luts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Signal;

    fn verify_mapping(m: &Mig, mapping: &Mapping) {
        // Exhaustive check for small input counts.
        let n = m.num_inputs();
        assert!(n <= 10, "test helper limit");
        for j in 0..1usize << n {
            let bits: Vec<bool> = (0..n).map(|i| (j >> i) & 1 == 1).collect();
            assert_eq!(
                mapping.evaluate(m, &bits),
                m.evaluate(&bits),
                "pattern {j:b}"
            );
        }
    }

    #[test]
    fn single_gate_maps_to_single_lut() {
        let mut m = Mig::new(3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let g = m.maj(a, b, c);
        m.add_output(g);
        let mapping = map_luts(&m, &MapConfig::default());
        assert_eq!(mapping.area, 1);
        assert_eq!(mapping.depth, 1);
        verify_mapping(&m, &mapping);
    }

    #[test]
    fn full_adder_maps_into_two_luts() {
        let mut m = Mig::new(3);
        let (a, b, c) = (m.input(0), m.input(1), m.input(2));
        let (s, co) = m.full_adder(a, b, c);
        m.add_output(s);
        m.add_output(co);
        let mapping = map_luts(&m, &MapConfig::default());
        assert_eq!(mapping.area, 2);
        assert_eq!(mapping.depth, 1);
        verify_mapping(&m, &mapping);
    }

    #[test]
    fn lut_size_trades_area_for_depth() {
        // An 8-input AND chain: 6-LUTs need fewer levels than 2-LUTs.
        let mut m = Mig::new(8);
        let mut acc = m.input(0);
        for i in 1..8 {
            let x = m.input(i);
            acc = m.and(acc, x);
        }
        m.add_output(acc);
        let m6 = map_luts(
            &m,
            &MapConfig {
                lut_size: 6,
                ..Default::default()
            },
        );
        let m2 = map_luts(
            &m,
            &MapConfig {
                lut_size: 2,
                ..Default::default()
            },
        );
        assert!(m6.area <= m2.area);
        assert!(m6.depth <= m2.depth);
        verify_mapping(&m, &m6);
        verify_mapping(&m, &m2);
        assert_eq!(m2.area, 7, "2-LUT cover of a 7-gate AND chain");
    }

    #[test]
    fn shared_logic_counted_once() {
        let mut m = Mig::new(4);
        let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
        let shared = m.xor(a, b);
        let o1 = m.maj(shared, c, d);
        let o2 = m.maj(shared, !c, !d);
        m.add_output(o1);
        m.add_output(o2);
        let mapping = map_luts(&m, &MapConfig::default());
        verify_mapping(&m, &mapping);
        // 4-input functions: both outputs fit in one LUT each.
        assert!(mapping.area <= 2, "area {}", mapping.area);
    }

    #[test]
    fn constant_and_input_outputs_need_no_luts() {
        let mut m = Mig::new(2);
        let a = m.input(0);
        m.add_output(Signal::ONE);
        m.add_output(!a);
        let mapping = map_luts(&m, &MapConfig::default());
        assert_eq!(mapping.area, 0);
        assert_eq!(mapping.depth, 0);
        verify_mapping(&m, &mapping);
    }

    #[test]
    fn area_recovery_never_worsens_depth() {
        let mut m = Mig::new(6);
        let ins: Vec<Signal> = m.inputs().collect();
        let x1 = m.xor(ins[0], ins[1]);
        let x2 = m.xor(x1, ins[2]);
        let x3 = m.xor(x2, ins[3]);
        let g = m.maj(x3, ins[4], ins[5]);
        m.add_output(g);
        m.add_output(x2);
        let no_recovery = map_luts(
            &m,
            &MapConfig {
                area_rounds: 0,
                ..Default::default()
            },
        );
        let with_recovery = map_luts(&m, &MapConfig::default());
        assert!(with_recovery.depth <= no_recovery.depth);
        verify_mapping(&m, &with_recovery);
    }

    #[test]
    fn mapping_covers_multi_level_adder() {
        // A 4-bit ripple-carry adder: verify functional equivalence of the
        // cover exhaustively over all 256 input patterns.
        let mut m = Mig::new(8);
        let mut carry = Signal::ZERO;
        for i in 0..4 {
            let (s, c) = {
                let a = m.input(i);
                let b = m.input(i + 4);
                m.full_adder(a, b, carry)
            };
            m.add_output(s);
            carry = c;
        }
        m.add_output(carry);
        let mapping = map_luts(&m, &MapConfig::default());
        verify_mapping(&m, &mapping);
        assert!(mapping.area >= 4);
    }
}
