//! # mig-fh
//!
//! A comprehensive Rust reproduction of *Optimizing Majority-Inverter
//! Graphs with Functional Hashing* (Mathias Soeken, Luca Gaetano Amarù,
//! Pierre-Emmanuel Gaillardon, Giovanni De Micheli — DATE 2016).
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`mig`] — the Majority-Inverter Graph data structure (paper §II-B);
//! * [`truth`] — truth tables and NPN classification (§II-D);
//! * [`cuts`] — k-feasible cut enumeration (§II-C);
//! * [`sat`] — the CDCL SAT solver standing in for Z3;
//! * [`exact`] — exact synthesis of minimum MIGs (§III);
//! * [`npndb`] — the database of minimum MIGs for all 222 4-variable NPN
//!   classes (§V-A);
//! * [`fhash`] — the functional-hashing size optimization (§IV, the
//!   paper's primary contribution) in all its variants (T/TD/TF/TFD/B/BF),
//!   as serial in-place engines and on the event-driven convergence
//!   scheduler (`FunctionalHashing::run_sharded` /
//!   `run_converge_threads`, built on `mig::run_scheduler`);
//! * [`migalg`] — algebraic MIG optimization (refs \[3\], \[4\]) used to
//!   produce "heavily optimized" starting points;
//! * [`aig`] — an AND-inverter-graph substrate and rewriting baseline;
//! * [`techmap`] — a cut-based k-LUT technology mapper (Table IV);
//! * [`benchgen`] — EPFL-style arithmetic benchmark generators (§V-C);
//! * [`cec`] — combinational equivalence checking used to validate every
//!   optimization;
//! * [`io`] — circuit interchange: AIGER (`.aag`/`.aig`) and BLIF
//!   readers/writers with positioned parse errors and lossless document
//!   models, so the optimizer runs on real-world netlists (see also the
//!   `migopt` binary in the `cli` crate, which chains passes over these
//!   crates with an ABC-style pipeline grammar);
//! * [`obs`] — the observability layer every crate above records into:
//!   nested span tracing, the typed metric registry the stats structs
//!   are reconstructed from, Chrome-trace/JSONL exporters and a
//!   dependency-free JSON reader (surfaced as `migopt
//!   --trace`/`--metrics`/`--json-report`).
//!
//! # Quick start
//!
//! ```
//! use mig_fh::fhash::{FunctionalHashing, Variant};
//! use mig_fh::mig::Mig;
//!
//! // Build a tiny redundant MIG and shrink it.
//! let mut m = Mig::new(3);
//! let (a, b, c) = (m.input(0), m.input(1), m.input(2));
//! let x = m.xor(a, b);
//! let y = m.xor(x, c);
//! m.add_output(y);
//!
//! let engine = FunctionalHashing::with_default_database();
//! let optimized = engine.run(&m, Variant::TopDown);
//! assert!(optimized.num_gates() <= m.num_gates());
//! ```

pub use aig;
pub use benchgen;
pub use cec;
pub use cuts;
pub use exact;
pub use fhash;
pub use io;
pub use mig;
pub use migalg;
pub use npndb;
pub use obs;
pub use sat;
pub use techmap;
pub use truth;
