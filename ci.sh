#!/bin/sh
# CI gate: build, tests, formatting, lints, pipeline smoke runs, benches.
# Run from the repo root.
set -eu

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test -q"
cargo test -q --workspace

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== migopt smoke runs over benchmarks/ (exit code 2 = CEC failure)"
# Every pipeline ends in `cec`: a counterexample makes migopt exit 2 and
# fails CI here. Covers the in-place fhash variants, the
# scheduler-driven fhash! convergence pass, the sharded @2/@4 engines
# and the interleaved in-place algebraic passes on all checked-in
# circuits.
MIGOPT=./target/release/migopt
for f in benchmarks/full_adder.aag benchmarks/adder8.aag \
         benchmarks/mult4.aig benchmarks/adder4.blif; do
    for p in "strash; fhash:T; cec" \
             "strash; fhash:TFD; fhash:B; cec" \
             "strash; algebraic; fhash!:B; cec" \
             "strash; fhash!:TF; fhash!:B; cec; stats" \
             "strash; fhash:T@2; fhash:TD@2; cec" \
             "strash; fhash:TF@2; fhash:TFD@2; cec" \
             "strash; fhash:BF@2; fhash:B@2; cec" \
             "strash; fhash!:T@2; fhash!:B@2; cec; stats" \
             "strash; size!; fhash!:B@2; depth!; cec" \
             "strash; algebraic@2; fhash:TFD; cec" \
             "strash; depth!@2; size!@2; fhash:T; cec; stats" \
             "strash; fhash!:TFD@4; algebraic@4; cec" \
             "strash; fhash!:B@4; algebraic@4; cec" \
             "strash; size!@4; depth!@4; fhash!:TD@4; cec; stats"; do
        echo "-- migopt -i $f -p \"$p\""
        "$MIGOPT" -q -i "$f" -p "$p"
    done
    # The -j default applies to passes without an explicit @N suffix.
    echo "-- migopt -j 2 -i $f (default-threads pipeline)"
    "$MIGOPT" -q -j 2 -i "$f" -p "strash; fhash:TF; fhash:B; cec"
done

echo "== traced pipelines: JSONL schema validation (trace_lint)"
# One traced sharded pipeline per benchmark: the emitted JSONL must be
# non-empty, parse line by line and carry balanced per-thread spans;
# trace_lint exits non-zero on any violation.
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
for f in benchmarks/full_adder.aag benchmarks/adder8.aag \
         benchmarks/mult4.aig benchmarks/adder4.blif; do
    t="$TRACE_DIR/$(basename "$f").trace.jsonl"
    echo "-- migopt -i $f --trace $t"
    "$MIGOPT" -q -i "$f" -p "strash; fhash!:B@4; size!@4; cec" --trace "$t"
    ./target/release/trace_lint "$t"
done

echo "== generated-corpus smoke: compact pass on synthesized instances"
# Two large-graph corpus instances synthesized on the fly (gen_bench):
# deep stacked arithmetic (hyp) and control-dominated logic (ctrl),
# through the convergence scheduler, a mid-pipeline compact and a
# budgeted SAT equivalence check (random simulation always runs in
# full; exit code 2 = counterexample fails CI here).
GEN=./target/release/gen_bench
for spec in hyp:24 ctrl:8:6:150:7; do
    g="$TRACE_DIR/$(echo "$spec" | tr ':' '_').blif"
    "$GEN" "$spec" "$g"
    echo "-- migopt -i $g -p \"fhash!:B@4; compact; algebraic@4; cec:50000\""
    "$MIGOPT" -q -i "$g" -p "fhash!:B@4; compact; algebraic@4; cec:50000"
done

echo "== migd daemon smoke: serve, repeat job, stream lint, warm-runtime gate"
# Start the daemon on a temp socket with a fresh cache file and push
# three jobs through --connect: a cold run of the synthesized hyp
# instance, an unrelated job (so the repeat is not just socket reuse),
# and an exact repeat of the first. Every captured per-job JSONL stream
# must lint clean; the repeat must be served from the result cache and
# come in at <= 0.8x the cold job's server-side runtime.
SOCK="$TRACE_DIR/migd.sock"
CACHEF="$TRACE_DIR/migd.cache"
DJOB="$TRACE_DIR/hyp_24.blif"
"$MIGOPT" -q --serve "$SOCK" --cache "$CACHEF" --workers 2 &
MIGD_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "FAIL: migd socket never appeared"; exit 1; }
echo "-- migopt --connect $SOCK -i $DJOB (cold)"
"$MIGOPT" -q --connect "$SOCK" -i "$DJOB" -p "fhash!:TFD@2; compact" \
    --trace "$TRACE_DIR/job_cold.jsonl"
echo "-- migopt --connect $SOCK -i benchmarks/adder8.aag (interleaved)"
"$MIGOPT" -q --connect "$SOCK" -i benchmarks/adder8.aag -p "strash; fhash!:TFD" \
    --trace "$TRACE_DIR/job_other.jsonl"
echo "-- migopt --connect $SOCK -i $DJOB (repeat)"
"$MIGOPT" -q --connect "$SOCK" -i "$DJOB" -p "fhash!:TFD@2; compact" \
    --trace "$TRACE_DIR/job_warm.jsonl"
./target/release/trace_lint "$TRACE_DIR/job_cold.jsonl"
./target/release/trace_lint "$TRACE_DIR/job_other.jsonl"
./target/release/trace_lint "$TRACE_DIR/job_warm.jsonl"
"$MIGOPT" --shutdown "$SOCK"
wait "$MIGD_PID"
grep -q '"cached":true' "$TRACE_DIR/job_warm.jsonl" || {
    echo "FAIL: repeated daemon job was not served from the result cache"; exit 1;
}
rt_of() { grep '"type":"result"' "$1" | sed 's/.*"runtime_ns":\([0-9]*\).*/\1/'; }
RC=$(rt_of "$TRACE_DIR/job_cold.jsonl")
RW=$(rt_of "$TRACE_DIR/job_warm.jsonl")
[ -n "$RC" ] && [ -n "$RW" ] || { echo "FAIL: missing result runtimes"; exit 1; }
awk -v c="$RC" -v w="$RW" 'BEGIN { exit !(w <= 0.8 * c) }' || {
    echo "FAIL: warm daemon job ($RW ns) not <= 0.8x cold ($RC ns)"
    exit 1
}
echo "ok: warm daemon job = $RW ns <= 0.8x cold = $RC ns"

echo "== production-corpus determinism + equivalence gate (>=100k gates)"
./target/release/corpus_check

echo "== tracing-off overhead gate (sched/chain512@1, bound 5%)"
cargo run --release -q -p bench_harness --bin trace_overhead

echo "== micro/io benches (refreshes BENCH_micro.json / BENCH_io.json)"
cargo bench -p bench_harness --bench micro
cargo bench -p bench_harness --bench io_throughput

echo "== parallel-commit speedup gate (sched/mult_big@4 vs @1)"
# Wave application must pay off where there are cores to show it: with
# >= 4 hardware threads, the @4 mean must come in under 0.7x the @1 mean
# (>= 1.4x speedup). On smaller machines wall-clock speedup is
# physically impossible (the workers timeshare one core), so the gate
# degrades to a no-pathological-overhead bound: @4 <= 1.25x @1.
mean_of() {
    grep "\"$1\"" BENCH_micro.json | sed 's/.*"mean_ns": \([0-9.]*\).*/\1/'
}
min_of() {
    grep "\"$1\"" BENCH_micro.json | sed 's/.*"min_ns": \([0-9.]*\).*/\1/'
}
cores_of() {
    grep "\"$1\"" BENCH_micro.json | sed -n 's/.*"cores": \([0-9]*\).*/\1/p'
}
M1=$(mean_of "sched/mult_big@1")
M4=$(mean_of "sched/mult_big@4")
# The @N rows record the core count of the host that *measured* them;
# gating on that instead of `nproc` at gate time keeps the branch honest
# when the JSON was produced on a different machine than the gate runs
# on (a 1-core container's @4 row must never be held to a speedup
# target, and an 8-core host's row must never sneak past on the waiver).
CORES=$(cores_of "sched/mult_big@4")
[ -n "$CORES" ] || CORES=$(nproc 2>/dev/null || echo 1)
[ -n "$M1" ] && [ -n "$M4" ] || { echo "missing sched/mult_big rows"; exit 1; }
if [ "$CORES" -ge 4 ]; then
    awk -v a="$M1" -v b="$M4" 'BEGIN { exit !(b < 0.7 * a) }' || {
        echo "FAIL: sched/mult_big@4 ($M4 ns) not < 0.7x @1 ($M1 ns) on $CORES cores"
        exit 1
    }
    echo "ok: @4 = $M4 ns < 0.7x @1 = $M1 ns ($CORES cores)"
else
    awk -v a="$M1" -v b="$M4" 'BEGIN { exit !(b <= 1.25 * a) }' || {
        echo "FAIL: sched/mult_big@4 ($M4 ns) regressed past 1.25x @1 ($M1 ns)"
        exit 1
    }
    echo "skip: only $CORES core(s) — speedup target waived, overhead bound ok (@4 = $M4 ns, @1 = $M1 ns)"
fi

echo "== allocation-free cut-kernel gate (fhash/propose_kernel_mult_big@1)"
# The arena-backed cut kernels (ISSUE 10) must hold their win: one
# single-thread in-place top-down pass over mult_big at <= 0.8x the
# pre-arena seed. Seed measured on this container before the arena
# landed: mean_ns 691320021 (nested-Vec cut storage, per-node to_vec,
# per-cut canonize). Same-shape @1 work on both sides, so no core-count
# branch; re-baseline the constant only with a storage-layer change.
PK_SEED_NS=691320021
PK=$(mean_of "fhash/propose_kernel_mult_big@1")
[ -n "$PK" ] || { echo "missing fhash/propose_kernel_mult_big@1 row"; exit 1; }
awk -v p="$PK" -v s="$PK_SEED_NS" 'BEGIN { exit !(p <= 0.8 * s) }' || {
    echo "FAIL: propose kernel ($PK ns) not <= 0.8x pre-arena seed ($PK_SEED_NS ns)"
    exit 1
}
echo "ok: propose kernel = $PK ns <= 0.8x pre-arena seed = $PK_SEED_NS ns"

echo "== large-corpus scale gate (fhash!/epfl_big@1 vs sched/mult_big@1, ns/gate)"
# Per-gate convergence cost on the 4x-larger production instance must
# stay within a constant factor of the medium instance's — superlinear
# blowup here means the storage layer stopped scaling. Both terms are
# same-machine @1 runs, so the ratio needs no core-count branch. The
# gate reads min_ns (the mean swings ~8% per iteration on shared
# hosts), and the bound is 2.25x: the signature table speeds the
# medium instance more than the large one (its cut functions repeat
# more densely within the 2^16 signature space), so the denominator
# improving shifts the ratio without any large-instance regression.
ctx_of() {
    grep -o "\"$1\": [0-9.]*" BENCH_micro.json | head -n 1 | sed 's/.*: //'
}
E1=$(min_of "fhash!/epfl_big@1")
MM=$(min_of "sched/mult_big@1")
EG=$(ctx_of "corpus.epfl_big_gates")
MG=$(ctx_of "corpus.mult_big_gates")
[ -n "$E1" ] && [ -n "$MM" ] && [ -n "$EG" ] && [ -n "$MG" ] || {
    echo "missing epfl_big rows/context in BENCH_micro.json"; exit 1;
}
ENG=$(awk -v e="$E1" -v g="$EG" 'BEGIN { printf "%.0f", e / g }')
MNG=$(awk -v m="$MM" -v g="$MG" 'BEGIN { printf "%.0f", m / g }')
awk -v e="$ENG" -v m="$MNG" 'BEGIN { exit !(e <= 2.25 * m) }' || {
    echo "FAIL: epfl_big@1 at $ENG ns/gate, past 2.25x mult_big@1 at $MNG ns/gate"
    exit 1
}
echo "ok: epfl_big@1 = $ENG ns/gate <= 2.25x mult_big@1 = $MNG ns/gate"

echo "== compacted-layout locality gate (walk ns/gate within 1.1x fresh)"
# The renumbered post-churn graph must walk as fast as a freshly built
# one: compaction is what keeps long-churning runs from chasing sparse
# cache lines, so a regression here is a storage-layout bug even when
# every timing row above still passes.
WF=$(mean_of "mig/walk_epfl_big_fresh")
WC=$(mean_of "mig/walk_epfl_big_compacted")
CG=$(ctx_of "corpus.epfl_big_churned_gates")
[ -n "$WF" ] && [ -n "$WC" ] && [ -n "$CG" ] || {
    echo "missing walk_epfl_big rows/context in BENCH_micro.json"; exit 1;
}
FNG=$(awk -v w="$WF" -v g="$EG" 'BEGIN { printf "%.2f", w / g }')
CNG=$(awk -v w="$WC" -v g="$CG" 'BEGIN { printf "%.2f", w / g }')
awk -v f="$FNG" -v c="$CNG" 'BEGIN { exit !(c <= 1.1 * f) }' || {
    echo "FAIL: compacted walk at $CNG ns/gate, past 1.1x fresh walk at $FNG ns/gate"
    exit 1
}
echo "ok: compacted walk = $CNG ns/gate <= 1.1x fresh walk = $FNG ns/gate"

echo "== persistent-cache warm-speedup gate (cache/warm vs cache/cold, >= 1.25x)"
# A fresh service over the flushed cache file must answer the whole
# mult_big job from the result tier fast enough to be worth shipping:
# warm mean <= 0.8x cold mean (>= 1.25x speedup). This is pure
# load + verify vs full optimization, so the bound holds on any core
# count and a miss here means the cache or its verification got slow.
CC=$(mean_of "cache/cold_mult_big@1")
CW=$(mean_of "cache/warm_mult_big@1")
HR=$(ctx_of "cache.result_hit_rate_warm")
[ -n "$CC" ] && [ -n "$CW" ] || { echo "missing cache rows in BENCH_micro.json"; exit 1; }
awk -v h="${HR:-0}" 'BEGIN { exit !(h >= 1.0) }' || {
    echo "FAIL: warm bench iterations were not all result-tier hits (rate ${HR:-0})"
    exit 1
}
awk -v c="$CC" -v w="$CW" 'BEGIN { exit !(w <= 0.8 * c) }' || {
    echo "FAIL: cache/warm_mult_big@1 ($CW ns) not <= 0.8x cold ($CC ns)"
    exit 1
}
echo "ok: warm = $CW ns <= 0.8x cold = $CC ns (hit rate $HR)"

echo "CI OK"
