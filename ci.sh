#!/bin/sh
# CI gate: build, tests, formatting, lints. Run from the repo root.
set -eu

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test -q"
cargo test -q --workspace

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
