//! Integration tests spanning the whole workspace: generator → algebraic
//! optimization → functional hashing → technology mapping, with
//! equivalence validation at each step.

use mig_fh::benchgen::EpflBenchmark;
use mig_fh::cec;
use mig_fh::fhash::{FunctionalHashing, Variant};
use mig_fh::migalg;
use mig_fh::techmap::{map_luts, MapConfig};

fn engine() -> FunctionalHashing {
    FunctionalHashing::with_default_database()
}

#[test]
fn all_variants_on_all_scaled_benchmarks_preserve_function() {
    let e = engine();
    for b in EpflBenchmark::ALL {
        let m = b.generate_scaled(1);
        for v in Variant::ALL {
            let opt = e.run(&m, v);
            assert!(
                cec::equivalent_random(&m, &opt, 8, 0xBEEF),
                "{b}/{v}: random mismatch"
            );
            assert_eq!(opt.num_inputs(), m.num_inputs(), "{b}/{v}");
            assert_eq!(opt.num_outputs(), m.num_outputs(), "{b}/{v}");
        }
    }
}

#[test]
fn depth_script_plus_fh_plus_mapping_on_scaled_divisor() {
    let raw = EpflBenchmark::Divisor.generate_scaled(2);
    // Depth-oriented script (refs [3], [4]).
    let mut base = raw.cleanup();
    for _ in 0..100 {
        let (next, _) = migalg::depth_rewrite(&base);
        if next.depth() >= base.depth() {
            break;
        }
        base = next;
    }
    assert!(base.depth() < raw.depth(), "depth script made progress");
    assert!(cec::equivalent_random(&raw, &base, 8, 1));

    // Functional hashing recovers size without breaking the function.
    let e = engine();
    let opt = e.run(&base, Variant::TopDownFfr);
    assert!(opt.num_gates() <= base.num_gates());
    assert!(cec::equivalent_random(&base, &opt, 8, 2));

    // Mapping the optimized MIG covers the same function.
    let mapping = map_luts(&opt, &MapConfig::default());
    assert!(mapping.area > 0);
    for pattern in [0u64, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF0] {
        let bits: Vec<bool> = (0..opt.num_inputs())
            .map(|i| (pattern >> (i % 64)) & 1 == 1)
            .collect();
        assert_eq!(mapping.evaluate(&opt, &bits), opt.evaluate(&bits));
    }
}

#[test]
fn sat_proof_of_fh_on_midsize_multiplier() {
    let m = mig_fh::benchgen::multiplier(6);
    let e = engine();
    let opt = e.run(&m, Variant::BottomUpFfr);
    assert_eq!(
        cec::prove_equivalent(&m, &opt, None),
        cec::CecResult::Equivalent
    );
}

#[test]
fn exhaustive_equivalence_on_small_log2_and_sine() {
    let e = engine();
    for m in [
        mig_fh::benchgen::log2(8, 3, 5, 6),
        mig_fh::benchgen::sine(8, 9, 8),
    ] {
        for v in [Variant::TopDown, Variant::BottomUpFfr] {
            let opt = e.run(&m, v);
            assert!(cec::equivalent_exhaustive(&m, &opt), "{v}");
        }
    }
}

#[test]
fn repeated_fh_rounds_converge_and_stay_correct() {
    // The paper notes running the algorithm several times helps; check
    // that iterating is monotone in size and preserves the function.
    let raw = EpflBenchmark::SquareRoot.generate_scaled(1);
    let e = engine();
    let mut cur = raw.cleanup();
    let mut last = usize::MAX;
    for round in 0..4 {
        let next = e.run(&cur, Variant::TopDown);
        assert!(
            next.num_gates() <= cur.num_gates(),
            "round {round} grew the MIG"
        );
        assert!(cec::equivalent_random(&raw, &next, 4, round as u64));
        if next.num_gates() == last {
            break;
        }
        last = next.num_gates();
        cur = next;
    }
}

#[test]
fn aig_baseline_flow_matches_mig_function() {
    // Cross-representation: MIG -> AIG conversion + balance + rewriting
    // keeps the circuit's function (checked on a small adder).
    let m = mig_fh::benchgen::adder(5);
    let a = mig_fh::aig::from_mig(&m);
    let balanced = mig_fh::aig::balance(&a);
    let rewritten = mig_fh::aig::AigRewriter::default().rewrite(&balanced);
    assert_eq!(
        rewritten.output_truth_tables(),
        m.output_truth_tables(),
        "AIG flow diverged from the MIG"
    );
}

#[test]
fn shannon_construction_composes_with_fh() {
    // Build an arbitrary 6-variable function via Theorem 2's construction,
    // then shrink it with functional hashing.
    let db = mig_fh::npndb::Database::embedded();
    let mut f = mig_fh::truth::TruthTable::zeros(6);
    for j in 0..64usize {
        if (j * 37 + 11) % 5 < 2 {
            f.set_bit(j, true);
        }
    }
    let m = mig_fh::npndb::shannon_mig(&f, &db);
    assert_eq!(m.output_truth_tables()[0], f);
    let e = engine();
    let opt = e.run(&m, Variant::TopDown);
    assert!(opt.num_gates() <= m.num_gates());
    assert_eq!(opt.output_truth_tables()[0], f);
}
