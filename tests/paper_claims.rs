//! Pins the paper's concrete, checkable claims (everything a referee
//! could verify without the authors' machines).

use mig_fh::exact::{minimum_size, SynthesisConfig};
use mig_fh::mig::Mig;
use mig_fh::npndb::{shannon_mig, theorem2_bound, Database};
use mig_fh::truth::{npn4_class_sizes, Npn4Canonizer, TruthTable};

/// Paper §II-D: 2, 4, 14, 222 NPN classes for n = 1..4.
#[test]
fn npn_class_counts() {
    assert_eq!(mig_fh::truth::npn4_class_representatives().len(), 222);
    for (n, expect) in [(1usize, 2usize), (2, 4), (3, 14)] {
        let mut reps = std::collections::HashSet::new();
        for f in 0..1u64 << (1 << n) {
            reps.insert(mig_fh::truth::npn_canonize(&TruthTable::from_bits(n, f)).representative);
        }
        assert_eq!(reps.len(), expect, "n = {n}");
    }
}

/// Paper Fig. 1: the full adder has MIG size 3 and depth 2.
#[test]
fn fig1_full_adder() {
    let mut m = Mig::new(3);
    let (a, b, c) = (m.input(0), m.input(1), m.input(2));
    let (s, co) = m.full_adder(a, b, c);
    m.add_output(s);
    m.add_output(co);
    assert_eq!(m.num_gates(), 3);
    assert_eq!(m.depth(), 2);
}

/// Paper Table I: classes and functions per minimum gate count.
#[test]
fn table1_histograms() {
    let db = Database::embedded();
    let sizes = npn4_class_sizes();
    let mut classes = std::collections::BTreeMap::new();
    let mut funcs = std::collections::BTreeMap::new();
    for e in db.iter() {
        *classes.entry(e.size).or_insert(0usize) += 1;
        *funcs.entry(e.size).or_insert(0u32) += sizes[&e.representative];
    }
    let expect_classes = [2, 2, 5, 18, 42, 117, 35, 1];
    let expect_funcs = [10, 80, 640, 3300, 10352, 40064, 11058, 32];
    for (k, (&c, &f)) in expect_classes.iter().zip(&expect_funcs).enumerate() {
        assert_eq!(classes[&(k as u32)], c, "classes at {k}");
        assert_eq!(funcs[&(k as u32)], f, "functions at {k}");
    }
}

/// Paper Fig. 2 / §V-A: the unique hardest class is S_{0,2} with 7 gates,
/// which is NPN-equivalent to (x1^x2^x3^x4) | x1x2x3x4.
#[test]
fn fig2_hardest_class() {
    let db = Database::embedded();
    let hardest: Vec<u16> = db
        .iter()
        .filter(|e| e.size == 7)
        .map(|e| e.representative)
        .collect();
    assert_eq!(hardest.len(), 1);
    let canon = Npn4Canonizer::new();
    // S_{0,2}
    let mut s02 = TruthTable::zeros(4);
    // (x1^x2^x3^x4) | x1x2x3x4
    let mut alt = TruthTable::zeros(4);
    for j in 0..16usize {
        if j.count_ones() == 0 || j.count_ones() == 2 {
            s02.set_bit(j, true);
        }
        if j.count_ones() % 2 == 1 || j == 15 {
            alt.set_bit(j, true);
        }
    }
    assert_eq!(canon.canonize(s02.as_u16()).0, hardest[0]);
    assert_eq!(
        canon.canonize(alt.as_u16()).0,
        hardest[0],
        "paper's alternative formulation is in the same class"
    );
}

/// Paper §V-A: the parity class S_{1,3} contains exactly 2 functions and
/// is the single deepest class (D = 4).
#[test]
fn parity_class_has_two_functions() {
    let sizes = npn4_class_sizes();
    let canon = Npn4Canonizer::new();
    let (rep, _) = canon.canonize(0x6996);
    assert_eq!(sizes[&rep], 2);
}

/// Paper Theorem 2: C(n) <= 10 * (2^(n-4) - 1) + 7, constructively.
#[test]
fn theorem2_constructive() {
    assert_eq!(theorem2_bound(4), 7);
    assert_eq!(theorem2_bound(5), 17);
    let db = Database::embedded();
    let mut seed = 99u64;
    for n in [5usize, 6] {
        for _ in 0..5 {
            let mut f = TruthTable::zeros(n);
            for j in 0..1usize << n {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                if seed >> 63 == 1 {
                    f.set_bit(j, true);
                }
            }
            let m = shannon_mig(&f, &db);
            assert_eq!(m.output_truth_tables()[0], f);
            assert!((m.cleanup().num_gates() as u64) <= theorem2_bound(n as u32));
        }
    }
}

/// Paper §III: exact synthesis matches the embedded database on a sample
/// of classes (independent re-derivation).
#[test]
fn exact_synthesis_agrees_with_database_sample() {
    let db = Database::embedded();
    let cfg = SynthesisConfig::default();
    for e in db.iter().filter(|e| e.size <= 4).step_by(7) {
        let net = minimum_size(&TruthTable::from_u16(e.representative), &cfg).unwrap();
        assert_eq!(net.size() as u32, e.size, "rep {:04x}", e.representative);
        assert_eq!(net.truth_table().as_u16(), e.representative);
    }
}

/// Paper §IV: the example of functional hashing shrinking
/// redundancy — a chained xor4 (9 gates) reaches the class minimum (6).
#[test]
fn fh_reaches_class_minimum_for_parity() {
    let mut m = Mig::new(4);
    let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
    let x = m.xor(a, b);
    let y = m.xor(c, d);
    let z = m.xor(x, y);
    m.add_output(z);
    let e = mig_fh::fhash::FunctionalHashing::with_default_database();
    let opt = e.run(&m, mig_fh::fhash::Variant::TopDown);
    assert_eq!(opt.num_gates(), 6);
}
