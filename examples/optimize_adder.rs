//! End-to-end flow on a realistic arithmetic block: generate a 32-bit
//! ripple-carry adder, depth-optimize it algebraically (refs [3], [4] —
//! turning the ripple structure into a carry-lookahead-like one), recover
//! size with functional hashing, technology-map the result, and prove
//! every step equivalent.
//!
//! Run with: `cargo run --release --example optimize_adder`

use mig_fh::benchgen;
use mig_fh::cec::{self, CecResult};
use mig_fh::fhash::{FunctionalHashing, Variant};
use mig_fh::migalg;
use mig_fh::techmap::{map_luts, MapConfig};

fn main() {
    let raw = benchgen::adder(32);
    println!("generated:      {raw}");

    // Depth-oriented algebraic rewriting to a fixpoint (the paper's
    // starting points were produced the same way).
    let mut depth_opt = raw.cleanup();
    loop {
        let (next, _) = migalg::depth_rewrite(&depth_opt);
        if next.depth() >= depth_opt.depth() {
            break;
        }
        depth_opt = next;
    }
    println!("depth script:   {depth_opt}");
    assert!(cec::equivalent_random(&raw, &depth_opt, 16, 1));

    // Functional hashing (paper §IV): recover size.
    let engine = FunctionalHashing::with_default_database();
    let mut best = depth_opt.clone();
    for v in Variant::ALL {
        let opt = engine.run(&depth_opt, v);
        println!(
            "fh {:>3}:        gates {:>4}, depth {:>3}",
            v.acronym(),
            opt.num_gates(),
            opt.depth()
        );
        assert!(cec::equivalent_random(&depth_opt, &opt, 16, 2));
        if opt.num_gates() < best.num_gates() {
            best = opt;
        }
    }

    // Technology mapping (paper Table IV's flow).
    for (name, m) in [("baseline", &depth_opt), ("best fh ", &best)] {
        let mapped = map_luts(m, &MapConfig::default());
        println!(
            "map {name}:   {:>4} LUTs, {:>2} levels",
            mapped.area, mapped.depth
        );
    }

    // Full SAT proof of the final result against the original adder.
    match cec::prove_equivalent(&raw, &best, Some(2_000_000)) {
        CecResult::Equivalent => println!("SAT proof: optimized adder == original adder"),
        CecResult::Unknown => println!("SAT proof: budget exhausted (random checks passed)"),
        CecResult::Counterexample(c) => panic!("mismatch on {c:?}"),
    }
}
