//! Quickstart: build a small MIG, shrink it with functional hashing, and
//! verify the result.
//!
//! Run with: `cargo run --release --example quickstart`

use mig_fh::cec;
use mig_fh::fhash::{FunctionalHashing, Variant};
use mig_fh::mig::Mig;

fn main() {
    // Build a deliberately wasteful 4-input parity: three xor2 blocks of
    // three majority gates each (9 gates). The minimum is 6.
    let mut m = Mig::new(4);
    let (a, b, c, d) = (m.input(0), m.input(1), m.input(2), m.input(3));
    let x = m.xor(a, b);
    let y = m.xor(c, d);
    let z = m.xor(x, y);
    m.add_output(z);
    println!("input MIG:     {m}");

    // The engine loads the embedded database of minimum MIGs for all 222
    // 4-variable NPN classes (paper Table I).
    let engine = FunctionalHashing::with_default_database();

    for variant in Variant::ALL {
        let optimized = engine.run(&m, variant);
        assert!(cec::equivalent_exhaustive(&m, &optimized));
        println!(
            "variant {:>3}:   gates {} -> {}, depth {} -> {}   (verified equivalent)",
            variant.acronym(),
            m.num_gates(),
            optimized.num_gates(),
            m.depth(),
            optimized.depth()
        );
    }
}
