//! Explore the minimum-MIG database (paper §V-A): look functions up by
//! NPN class, print Table I's histogram, and instantiate a database
//! template onto concrete leaves.
//!
//! Run with: `cargo run --release --example npn_database [hex4]`

use mig_fh::mig::Mig;
use mig_fh::npndb::{instantiate_via_npn, Database};
use mig_fh::truth::{Npn4Canonizer, TruthTable};

fn main() {
    let db = Database::embedded();
    println!(
        "embedded database: {} NPN classes, max minimum size {} (paper Table I)",
        db.len(),
        db.max_size()
    );
    println!(
        "size histogram (classes per gate count): {:?}",
        db.size_histogram()
    );

    let f: u16 = std::env::args()
        .nth(1)
        .map(|h| u16::from_str_radix(&h, 16).expect("4 hex digits"))
        .unwrap_or(0xcafe);
    let canon = Npn4Canonizer::new();
    let (rep, transform) = canon.canonize(f);
    println!("\nfunction 0x{f:04x}:");
    println!("  NPN representative: 0x{rep:04x}");
    println!(
        "  transform: perm={:?} flips={:#06b} out_neg={}",
        (0..4).map(|i| transform.perm(i)).collect::<Vec<_>>(),
        (0..4).fold(0u8, |m, i| m | (u8::from(transform.input_negated(i)) << i)),
        transform.output_negated()
    );
    let entry = db.get(rep).expect("database is complete");
    println!("  minimum MIG: {} gates, depth {}", entry.size, entry.depth);

    // Instantiate onto fresh inputs and verify.
    let mut m = Mig::new(4);
    let leaves: Vec<_> = m.inputs().collect();
    let out = instantiate_via_npn(f, &db, &mut m, &leaves);
    m.add_output(out);
    assert_eq!(m.output_truth_tables()[0], TruthTable::from_u16(f));
    println!("  instantiated and verified: {m}");
    println!("\n{}", m.to_dot());
}
