//! Exact synthesis walkthrough (paper §III): find minimum-size,
//! minimum-depth and minimum-length MIGs for chosen functions with the
//! SAT-based engine, and print the resulting structures.
//!
//! Run with: `cargo run --release --example exact_synthesis [hex4]`
//! where `hex4` is an optional 4-digit truth table (default: a tour of
//! interesting functions).

use mig_fh::exact::{minimum_depth, minimum_length, minimum_size, SynthesisConfig};
use mig_fh::truth::TruthTable;

fn describe(name: &str, f: &TruthTable) {
    let cfg = SynthesisConfig::default();
    let size_net = minimum_size(f, &cfg).expect("within gate limit");
    let len_net = minimum_length(f, &cfg).expect("within gate limit");
    let (depth, _) = minimum_depth(f, &cfg).expect("within gate limit");
    println!(
        "{name:<28} tt=0x{:<6} C(f)={:<2} L(f)={:<2} D(f)={depth}",
        f.to_hex(),
        size_net.size(),
        len_net.size(),
    );
    for (i, g) in size_net.gates().iter().enumerate() {
        let pin = |r: (u32, bool)| {
            let s = match r.0 {
                0 => "0".to_string(),
                k if (k as usize) <= f.num_vars() => format!("x{k}"),
                k => format!("g{}", k as usize - f.num_vars() - 1),
            };
            if r.1 {
                format!("!{s}")
            } else {
                s
            }
        };
        println!(
            "    g{i} = <{} {} {}>",
            pin(g.fanins[0]),
            pin(g.fanins[1]),
            pin(g.fanins[2])
        );
    }
}

fn main() {
    if let Some(hex) = std::env::args().nth(1) {
        let f = TruthTable::from_hex(4, &hex).expect("4 hex digits");
        describe("user function", &f);
        return;
    }
    describe("maj3", &TruthTable::from_hex(3, "e8").unwrap());
    describe("xor2", &TruthTable::from_hex(2, "6").unwrap());
    describe(
        "full-adder sum (xor3)",
        &TruthTable::from_hex(3, "96").unwrap(),
    );
    describe("and4", &TruthTable::from_hex(4, "8000").unwrap());
    describe("4-input parity", &TruthTable::from_hex(4, "6996").unwrap());
    // The paper's hardest class, S_{0,2} (Fig. 2): 7 gates.
    let mut s02 = TruthTable::zeros(4);
    for j in 0..16usize {
        if j.count_ones() == 0 || j.count_ones() == 2 {
            s02.set_bit(j, true);
        }
    }
    describe("S_{0,2} (paper Fig. 2)", &s02);
}
