//! Regenerates the checked-in `benchmarks/` circuits from the workspace
//! generators. Run from the repository root:
//!
//! ```text
//! cargo run --example gen_benchmarks
//! ```
//!
//! `benchmarks/full_adder.aag` is hand-written (it is the canonical tiny
//! example) and is *not* overwritten here.

use mig_fh::io::{aiger::Aiger, blif::Blif};

fn main() {
    std::fs::create_dir_all("benchmarks").expect("create benchmarks/");

    // 8-bit ripple-carry adder, ASCII AIGER (XOR-heavy: plenty of slack
    // for functional hashing to recover after naive AND-based ingestion).
    let adder = mig_fh::benchgen::adder(8);
    let doc = Aiger::from_mig(&adder);
    std::fs::write("benchmarks/adder8.aag", doc.to_ascii()).expect("write adder8.aag");
    println!(
        "benchmarks/adder8.aag    {} inputs, {} outputs, {} ANDs",
        doc.num_inputs(),
        doc.num_outputs(),
        doc.num_ands()
    );

    // 4-bit multiplier, binary AIGER.
    let mult = mig_fh::benchgen::multiplier(4);
    let doc = Aiger::from_mig(&mult);
    let bytes = doc.to_binary().expect("canonical document");
    std::fs::write("benchmarks/mult4.aig", bytes).expect("write mult4.aig");
    println!(
        "benchmarks/mult4.aig     {} inputs, {} outputs, {} ANDs",
        doc.num_inputs(),
        doc.num_outputs(),
        doc.num_ands()
    );

    // 4-bit adder in BLIF (majority covers preserved).
    let adder4 = mig_fh::benchgen::adder(4);
    let blif = Blif::from_mig(&adder4, "adder4");
    std::fs::write("benchmarks/adder4.blif", blif.to_text()).expect("write adder4.blif");
    println!(
        "benchmarks/adder4.blif   {} inputs, {} outputs, {} tables",
        blif.inputs.len(),
        blif.outputs.len(),
        blif.gates.len()
    );
}
